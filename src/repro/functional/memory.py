"""Byte-addressable functional memory backing the L2 model.

A flat NumPy ``uint8`` array with typed bulk accessors.  The paper assumes
an L2 of at least 16 MiB (Table I footnote); the default here is 32 MiB so
the largest weak-scaling problems fit with room for result buffers.
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryAccessError

DEFAULT_SIZE = 32 * 2 ** 20


class FunctionalMemory:
    """Flat little-endian memory starting at address 0."""

    def __init__(self, size_bytes: int = DEFAULT_SIZE) -> None:
        if size_bytes <= 0:
            raise MemoryAccessError("memory size must be positive")
        self.size = int(size_bytes)
        self._data = np.zeros(self.size, dtype=np.uint8)
        #: float64 view of the aligned prefix: fast path for the scalar
        #: core's fld/fsd, which dominate kernel inner loops.
        self._f64 = self._data[:self.size & ~7].view(np.float64)
        #: Simple bump allocator cursor for test/kernel buffer placement.
        self._alloc_cursor = 0

    def __getstate__(self):
        # The f64 view aliases _data only in-process; rebuild on load
        # instead of pickling a detached copy.
        state = self.__dict__.copy()
        state.pop("_f64", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._f64 = self._data[:self.size & ~7].view(np.float64)

    # ------------------------------------------------------------------
    # Allocation helper (keeps kernels free of magic addresses)
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` and return the base address."""
        if nbytes < 0:
            raise MemoryAccessError("cannot allocate a negative size")
        base = -(-self._alloc_cursor // align) * align
        end = base + nbytes
        if end > self.size:
            raise MemoryAccessError(
                f"out of memory: need {end} bytes, have {self.size}"
            )
        self._alloc_cursor = end
        return base

    def reset_allocator(self) -> None:
        self._alloc_cursor = 0

    # ------------------------------------------------------------------
    # Raw byte access
    # ------------------------------------------------------------------
    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryAccessError(
                f"access [{addr}, {addr + nbytes}) outside memory of {self.size} B"
            )

    def read_bytes(self, addr: int, nbytes: int) -> np.ndarray:
        self._check(addr, nbytes)
        return self._data[addr:addr + nbytes].copy()

    def write_bytes(self, addr: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self._check(addr, data.size)
        self._data[addr:addr + data.size] = data

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------
    def read_array(self, addr: int, count: int, dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = count * dtype.itemsize
        self._check(addr, nbytes)
        return self._data[addr:addr + nbytes].view(dtype).copy()

    def write_array(self, addr: int, values: np.ndarray) -> None:
        values = np.ascontiguousarray(values)
        nbytes = values.nbytes
        self._check(addr, nbytes)
        self._data[addr:addr + nbytes] = values.view(np.uint8).reshape(-1)

    def _byte_matrix(self, starts: np.ndarray, itemsize: int) -> np.ndarray:
        """Per-element byte index matrix with a single bounds check."""
        if starts.size == 0:
            return np.empty((0, itemsize), dtype=np.int64)
        lo = int(starts.min())
        hi = int(starts.max()) + itemsize
        if lo < 0 or hi > self.size:
            raise MemoryAccessError(
                f"access touching [{lo}, {hi}) outside memory of {self.size} B"
            )
        return starts[:, None] + np.arange(itemsize, dtype=np.int64)

    def read_strided(self, addr: int, count: int, stride: int,
                     dtype: np.dtype) -> np.ndarray:
        """Gather ``count`` elements spaced ``stride`` bytes apart."""
        dtype = np.dtype(dtype)
        starts = addr + stride * np.arange(count, dtype=np.int64)
        idx = self._byte_matrix(starts, dtype.itemsize)
        return np.ascontiguousarray(self._data[idx]).view(dtype).reshape(-1)

    def write_strided(self, addr: int, values: np.ndarray, stride: int) -> None:
        values = np.ascontiguousarray(values)
        if values.size == 0:  # e.g. a masked store with no active elements
            return
        starts = addr + stride * np.arange(values.size, dtype=np.int64)
        idx = self._byte_matrix(starts, values.dtype.itemsize)
        self._data[idx] = values.view(np.uint8).reshape(values.size, -1)

    def read_gather(self, base: int, offsets: np.ndarray,
                    dtype: np.dtype) -> np.ndarray:
        """Indexed gather: element i at ``base + offsets[i]`` (byte offsets)."""
        dtype = np.dtype(dtype)
        starts = base + np.asarray(offsets, dtype=np.int64)
        idx = self._byte_matrix(starts, dtype.itemsize)
        return np.ascontiguousarray(self._data[idx]).view(dtype).reshape(-1)

    def write_scatter(self, base: int, offsets: np.ndarray,
                      values: np.ndarray) -> None:
        values = np.ascontiguousarray(values)
        if values.size == 0:  # e.g. a masked store with no active elements
            return
        starts = base + np.asarray(offsets, dtype=np.int64)
        idx = self._byte_matrix(starts, values.dtype.itemsize)
        self._data[idx] = values.view(np.uint8).reshape(values.size, -1)

    # ------------------------------------------------------------------
    # Scalar access used by the CVA6 model
    # ------------------------------------------------------------------
    def load_int(self, addr: int, nbytes: int, signed: bool = True) -> int:
        raw = self.read_bytes(addr, nbytes)
        value = int.from_bytes(raw.tobytes(), "little", signed=signed)
        return value

    def store_int(self, addr: int, value: int, nbytes: int) -> None:
        mask = (1 << (8 * nbytes)) - 1
        raw = (value & mask).to_bytes(nbytes, "little")
        self.write_bytes(addr, np.frombuffer(raw, dtype=np.uint8))

    def load_f64(self, addr: int) -> float:
        if addr % 8 == 0 and 0 <= addr and addr + 8 <= self.size:
            return float(self._f64[addr >> 3])
        return float(self.read_array(addr, 1, np.float64)[0])

    def store_f64(self, addr: int, value: float) -> None:
        if addr % 8 == 0 and 0 <= addr and addr + 8 <= self.size:
            self._f64[addr >> 3] = value
            return
        self.write_array(addr, np.array([value], dtype=np.float64))

    def load_f32(self, addr: int) -> float:
        return float(self.read_array(addr, 1, np.float32)[0])

    def store_f32(self, addr: int, value: float) -> None:
        self.write_array(addr, np.array([value], dtype=np.float32))
