"""Functional interpreter: runs a program to completion, emitting a trace.

The executor walks the instruction list with a program counter, delegating
scalar semantics to :class:`~repro.functional.scalar.ScalarUnit` and vector
semantics to :class:`~repro.functional.vector.VectorUnit`.  It owns the
``vsetvli`` behaviour because that instruction couples scalar state (rd,
rs1) with vector configuration state (vl, vtype).

The hot loop runs over the program's pre-decoded
:class:`~repro.functional.plan.InstrPlan` tuple (built once per program,
cached on the program object): dispatch is an integer tag compare, branch
targets are pre-resolved instruction indices, and scalar handlers are
pre-bound callables — no per-retirement string or dict lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError
from ..isa.program import Program
from ..isa.vtype import vsetvl_result
from .memory import FunctionalMemory
from .plan import K_HALT, K_SCALAR, K_VECTOR, K_VSETVLI, plans_for
from .scalar import ScalarUnit
from .state import ArchState
from .trace import DynamicTrace, VsetvlEvent
from .vector import VectorUnit

#: Hard cap on retired instructions so a buggy kernel cannot hang a test
#: run; the largest paper workload retires well under this.
DEFAULT_MAX_INSTRUCTIONS = 50_000_000


@dataclass
class ExecResult:
    """Outcome of a functional run."""

    state: ArchState
    trace: DynamicTrace
    retired: int
    program: Program
    halted: bool = True
    extra: dict = field(default_factory=dict)


class Executor:
    """Drives a :class:`Program` against fresh or provided machine state."""

    def __init__(self, vlen_bits: int, mem: FunctionalMemory | None = None,
                 state: ArchState | None = None) -> None:
        self.mem = mem if mem is not None else FunctionalMemory()
        self.state = state if state is not None else ArchState(vlen_bits)
        if self.state.vlen_bits != vlen_bits:
            raise ExecutionError(
                f"state VLEN {self.state.vlen_bits} != requested {vlen_bits}"
            )
        self._scalar = ScalarUnit(self.state, self.mem)
        self._vector = VectorUnit(self.state, self.mem)

    # ------------------------------------------------------------------
    def run(self, program: Program,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> ExecResult:
        """Execute until ``halt`` or the end of the program."""
        state = self.state
        trace = DynamicTrace()
        events = trace.events
        plans = plans_for(program)
        scalar_unit = self._scalar
        vector_exec = self._vector.execute_plan
        pc = 0
        retired = 0
        n = len(plans)
        while pc < n:
            if retired >= max_instructions:
                raise ExecutionError(
                    f"exceeded {max_instructions} retired instructions "
                    f"(runaway loop in {program.name}?)"
                )
            p = plans[pc]
            kind = p.kind
            if kind == K_VECTOR:
                retired += 1
                event = vector_exec(p)
                events.append(event)
                trace.vector_count += 1
                trace.total_flops += p.flops * event.vl
                pc += 1
            elif kind == K_SCALAR:
                retired += 1
                taken, event = p.scalar_fn(scalar_unit, p)
                events.append(event)
                trace.scalar_count += 1
                pc = p.target_idx if taken else pc + 1
            elif kind == K_VSETVLI:
                retired += 1
                self._vsetvli(p, trace)
                pc += 1
            elif kind == K_HALT:
                retired += 1
                return ExecResult(state, trace, retired, program, halted=True)
            else:  # pragma: no cover - labels aren't emitted
                pc += 1
        return ExecResult(state, trace, retired, program, halted=False)

    # ------------------------------------------------------------------
    def _vsetvli(self, p, trace: DynamicTrace) -> None:
        state = self.state
        vtype, sew_i, lmul_i = p.aux
        vlmax = state.vlen_bits * lmul_i // sew_i
        if p.rs1 == 0:
            # rs1=x0: rd!=x0 requests VLMAX; rd==x0 keeps vl (vtype change).
            new_vl = vlmax if p.rd != 0 else min(state.vl, vlmax)
        else:
            avl = state.x.read_unsigned(p.rs1)
            new_vl = vsetvl_result(avl, vtype, state.vlen_bits)
        state.vtype = vtype
        state.vl = new_vl
        state.x.write(p.rd, new_vl)
        trace.add_vsetvl(VsetvlEvent(vl=new_vl, sew=sew_i, lmul=lmul_i))
