"""Functional interpreter: runs a program to completion, emitting a trace.

The executor walks the instruction list with a program counter, delegating
scalar semantics to :class:`~repro.functional.scalar.ScalarUnit` and vector
semantics to :class:`~repro.functional.vector.VectorUnit`.  It owns the
``vsetvli`` behaviour because that instruction couples scalar state (rd,
rs1) with vector configuration state (vl, vtype).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError
from ..isa.program import Program
from ..isa.vtype import VType, vsetvl_result
from .memory import FunctionalMemory
from .scalar import ScalarUnit
from .state import ArchState
from .trace import DynamicTrace, VsetvlEvent
from .vector import VectorUnit

#: Hard cap on retired instructions so a buggy kernel cannot hang a test
#: run; the largest paper workload retires well under this.
DEFAULT_MAX_INSTRUCTIONS = 50_000_000


@dataclass
class ExecResult:
    """Outcome of a functional run."""

    state: ArchState
    trace: DynamicTrace
    retired: int
    program: Program
    halted: bool = True
    extra: dict = field(default_factory=dict)


class Executor:
    """Drives a :class:`Program` against fresh or provided machine state."""

    def __init__(self, vlen_bits: int, mem: FunctionalMemory | None = None,
                 state: ArchState | None = None) -> None:
        self.mem = mem if mem is not None else FunctionalMemory()
        self.state = state if state is not None else ArchState(vlen_bits)
        if self.state.vlen_bits != vlen_bits:
            raise ExecutionError(
                f"state VLEN {self.state.vlen_bits} != requested {vlen_bits}"
            )
        self._scalar = ScalarUnit(self.state, self.mem)
        self._vector = VectorUnit(self.state, self.mem)

    # ------------------------------------------------------------------
    def run(self, program: Program,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> ExecResult:
        """Execute until ``halt`` or the end of the program."""
        state = self.state
        trace = DynamicTrace()
        pc = 0
        retired = 0
        n = len(program)
        while pc < n:
            if retired >= max_instructions:
                raise ExecutionError(
                    f"exceeded {max_instructions} retired instructions "
                    f"(runaway loop in {program.name}?)"
                )
            instr = program[pc]
            mnemonic = instr.mnemonic
            if mnemonic == "halt":
                retired += 1
                return ExecResult(state, trace, retired, program, halted=True)
            if mnemonic == "label":  # pragma: no cover - labels aren't emitted
                pc += 1
                continue
            retired += 1
            if mnemonic == "vsetvli":
                self._vsetvli(instr, trace)
                pc += 1
                continue
            if instr.spec.is_vector:
                trace.add_vector(self._vector.execute(instr))
                pc += 1
                continue
            target, event = self._scalar.execute(instr)
            trace.add_scalar(event)
            pc = program.target_index(target) if target is not None else pc + 1
        return ExecResult(state, trace, retired, program, halted=False)

    # ------------------------------------------------------------------
    def _vsetvli(self, instr, trace: DynamicTrace) -> None:
        state = self.state
        rd = instr.op("rd").index
        rs1 = instr.op("rs1").index
        vtype = VType(sew=instr.op("sew"), lmul=instr.op("lmul"))
        vlmax = vtype.vlmax(state.vlen_bits)
        if rs1 == 0:
            # rs1=x0: rd!=x0 requests VLMAX; rd==x0 keeps vl (vtype change).
            new_vl = vlmax if rd != 0 else min(state.vl, vlmax)
        else:
            avl = state.x.read_unsigned(rs1)
            new_vl = vsetvl_result(avl, vtype, state.vlen_bits)
        state.vtype = vtype
        state.vl = new_vl
        state.x.write(rd, new_vl)
        trace.add_vsetvl(
            VsetvlEvent(vl=new_vl, sew=int(vtype.sew), lmul=int(vtype.lmul))
        )
