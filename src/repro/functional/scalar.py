"""Scalar (CVA6-side) instruction semantics.

Implements the RV64-flavoured scalar IR: integer ALU with 64-bit wrapping,
M-extension multiply/divide with RISC-V division-by-zero semantics, D-
extension scalar FP on float64, loads/stores, and branches.

Handlers operate on pre-decoded :class:`~repro.functional.plan.InstrPlan`
objects: operand indices and the per-mnemonic semantic callable are
resolved once by :func:`resolve_scalar` (called at program decode time),
so the hot path does no ``getattr`` or format-dict dispatch.  A handler
returns ``(taken, event)`` where ``taken`` tells the executor to redirect
to ``plan.target_idx``.
"""

from __future__ import annotations

import math
import struct
from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError
from ..isa.instructions import Instruction, InstrSpec
from .memory import FunctionalMemory
from .state import ArchState
from .trace import ScalarEvent

_I64_MASK = (1 << 64) - 1


def _wrap(value: int) -> int:
    value &= _I64_MASK
    return value - (1 << 64) if value >= 1 << 63 else value


def _div(a: int, b: int) -> int:
    if b == 0:
        return -1
    if a == -(1 << 63) and b == -1:
        return a  # RISC-V overflow case: result is the dividend
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    return a - _div(a, b) * b


#: Singleton events for kinds that carry no payload — the trace only ever
#: reads them, so every ALU retirement can share one frozen instance.
_EV_ALU = ScalarEvent("alu")
_EV_MUL = ScalarEvent("mul")
_EV_DIV = ScalarEvent("div")
_EV_FP = ScalarEvent("fp")
_EV_BRANCH = ScalarEvent("branch")
_EV_TAKEN = ScalarEvent("branch_taken")


class ScalarUnit:
    """Executes one scalar instruction against the architectural state."""

    def __init__(self, state: ArchState, mem: FunctionalMemory) -> None:
        self.state = state
        self.mem = mem

    # ------------------------------------------------------------------
    def execute(self, instr: Instruction):
        """Decode-on-the-fly single-instruction path (tests, tools).

        Returns ``(taken-branch label or None, trace event)`` like the
        pre-plan interpreter did.
        """
        from .plan import plan_for_instr

        p = plan_for_instr(instr)
        taken, event = p.scalar_fn(self, p)
        return (p.target if taken else None), event

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------
    _BINOPS = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "mulh": lambda a, b: (a * b) >> 64,
        "div": _div,
        "rem": _rem,
        "and_": lambda a, b: a & b,
        "or_": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "sll": lambda a, b: a << (b & 63),
        "srl": lambda a, b: (a & _I64_MASK) >> (b & 63),
        "sra": lambda a, b: a >> (b & 63),
        "slt": lambda a, b: int(a < b),
        "sltu": lambda a, b: int((a & _I64_MASK) < (b & _I64_MASK)),
        "min_": min,
        "max_": max,
    }
    _IMMOPS = {
        "addi": "add", "andi": "and_", "ori": "or_", "xori": "xor",
        "slli": "sll", "srli": "srl", "srai": "sra", "slti": "slt",
    }
    _MUL_KINDS = frozenset({"mul", "mulh"})
    _DIV_KINDS = frozenset({"div", "rem"})

    def _h_alu_rr(self, p):
        op, ev = p.aux
        x = self.state.x
        x.write(p.rd, _wrap(op(x.read(p.rs1), x.read(p.rs2))))
        return False, ev

    def _h_alu_ri(self, p):
        op, ev = p.aux
        x = self.state.x
        x.write(p.rd, _wrap(op(x.read(p.rs1), p.imm)))
        return False, ev

    def _h_li(self, p):
        self.state.x.write(p.rd, p.imm)
        return False, _EV_ALU

    def _h_mv(self, p):
        x = self.state.x
        x.write(p.rd, x.read(p.rs1))
        return False, _EV_ALU

    def _h_nop(self, p):
        return False, _EV_ALU

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    _LOAD_SIZES = {"ld": 8, "lw": 4, "lh": 2, "lb": 1}
    _STORE_SIZES = {"sd": 8, "sw": 4, "sh": 2, "sb": 1}

    def _h_load(self, p):
        nbytes = p.aux
        addr = self.state.x.read(p.rs1) + p.imm
        self.state.x.write(p.rd, self.mem.load_int(addr, nbytes, signed=True))
        return False, ScalarEvent("load", addr=addr, nbytes=nbytes)

    def _h_store(self, p):
        nbytes = p.aux
        addr = self.state.x.read(p.rs1) + p.imm
        self.mem.store_int(addr, self.state.x.read(p.rs2), nbytes)
        return False, ScalarEvent("store", addr=addr, nbytes=nbytes)

    def _h_fload(self, p):
        addr = self.state.x.read(p.rs1) + p.imm
        if p.aux == 8:
            value = self.mem.load_f64(addr)
        else:
            value = self.mem.load_f32(addr)
        self.state.f.write(p.frd, value)
        return False, ScalarEvent("load", addr=addr, nbytes=p.aux)

    def _h_fstore(self, p):
        addr = self.state.x.read(p.rs1) + p.imm
        value = self.state.f.read(p.frs2)
        if p.aux == 8:
            self.mem.store_f64(addr, value)
        else:
            self.mem.store_f32(addr, value)
        return False, ScalarEvent("store", addr=addr, nbytes=p.aux)

    # ------------------------------------------------------------------
    # Scalar FP
    # ------------------------------------------------------------------
    @staticmethod
    def _fdiv(a: float, b: float) -> float:
        # IEEE-754 semantics including x/0 -> inf and 0/0 -> NaN.
        with np.errstate(divide="ignore", invalid="ignore"):
            return float(np.float64(a) / np.float64(b))

    _FP_BINOPS = {
        "fadd_d": lambda a, b: a + b,
        "fsub_d": lambda a, b: a - b,
        "fmul_d": lambda a, b: a * b,
        "fdiv_d": None,  # patched below (staticmethod resolution order)
        "fmin_d": min,
        "fmax_d": max,
        "fsgnj_d": lambda a, b: math.copysign(abs(a), b),
    }

    _FP_TERNOPS = {
        "fmadd_d": lambda a, b, c: a * b + c,
        "fmsub_d": lambda a, b, c: a * b - c,
        "fnmadd_d": lambda a, b, c: -(a * b) - c,
        "fnmsub_d": lambda a, b, c: -(a * b) + c,
    }

    _FP_UNOPS = {
        "fsqrt_d": lambda a: math.sqrt(a) if a >= 0 else math.nan,
        "fmv_d": lambda a: a,
        "fneg_d": lambda a: -a,
        "fabs_d": abs,
    }

    _FP_CMPS = {
        "feq_d": lambda a, b: int(a == b),
        "flt_d": lambda a, b: int(a < b),
        "fle_d": lambda a, b: int(a <= b),
    }

    def _h_fp_rr(self, p):
        f = self.state.f
        f.write(p.frd, p.aux(f.read(p.frs1), f.read(p.frs2)))
        return False, _EV_FP

    def _h_fp_rrr(self, p):
        f = self.state.f
        f.write(p.frd, p.aux(f.read(p.frs1), f.read(p.frs2), f.read(p.frs3)))
        return False, _EV_FP

    def _h_fp_r(self, p):
        f = self.state.f
        f.write(p.frd, p.aux(f.read(p.frs1)))
        return False, _EV_FP

    def _h_frd_rs(self, p):
        raw = self.state.x.read(p.rs1)
        if p.aux:  # fcvt.d.l
            value = float(raw)
        else:  # fmv.d.x: reinterpret bits
            value = struct.unpack(
                "<d", (raw & _I64_MASK).to_bytes(8, "little"))[0]
        self.state.f.write(p.frd, value)
        return False, _EV_FP

    def _h_rd_frs(self, p):
        a = self.state.f.read(p.frs1)
        if p.aux:  # fcvt.l.d: round towards zero
            value = int(a)
        else:  # fmv.x.d
            value = _wrap(int.from_bytes(struct.pack("<d", a), "little"))
        self.state.x.write(p.rd, value)
        return False, _EV_FP

    def _h_fcmp(self, p):
        f = self.state.f
        self.state.x.write(p.rd, p.aux(f.read(p.frs1), f.read(p.frs2)))
        return False, _EV_FP

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    _BRANCH_CMP = {
        "beq": lambda a, b: a == b,
        "bne": lambda a, b: a != b,
        "blt": lambda a, b: a < b,
        "bge": lambda a, b: a >= b,
        "bltu": lambda a, b: (a & _I64_MASK) < (b & _I64_MASK),
        "bgeu": lambda a, b: (a & _I64_MASK) >= (b & _I64_MASK),
    }
    _BRANCHZ_CMP = {
        "beqz": lambda a: a == 0,
        "bnez": lambda a: a != 0,
        "bltz": lambda a: a < 0,
        "bgez": lambda a: a >= 0,
        "blez": lambda a: a <= 0,
        "bgtz": lambda a: a > 0,
    }

    def _h_branch(self, p):
        x = self.state.x
        if p.aux(x.read(p.rs1), x.read(p.rs2)):
            return True, _EV_TAKEN
        return False, _EV_BRANCH

    def _h_branchz(self, p):
        if p.aux(self.state.x.read(p.rs1)):
            return True, _EV_TAKEN
        return False, _EV_BRANCH

    def _h_j(self, p):
        return True, _EV_TAKEN


ScalarUnit._FP_BINOPS["fdiv_d"] = ScalarUnit._fdiv


def resolve_scalar(spec: InstrSpec) -> tuple[Callable, Any]:
    """Resolve the handler + per-mnemonic data for one scalar mnemonic.

    Called once per static instruction at decode time; the returned pair
    lands in ``plan.scalar_fn`` / ``plan.aux``.
    """
    m = spec.mnemonic
    fmt = spec.fmt
    su = ScalarUnit
    if m == "li":
        return su._h_li, None
    if m == "mv":
        return su._h_mv, None
    if m == "nop":
        return su._h_nop, None
    if m == "j":
        return su._h_j, None
    if fmt == "rd_rs_rs" or fmt == "rd_rs_imm":
        base = su._IMMOPS.get(m, m)
        op = su._BINOPS[base]
        if base in su._MUL_KINDS:
            ev = _EV_MUL
        elif base in su._DIV_KINDS:
            ev = _EV_DIV
        else:
            ev = _EV_ALU
        handler = su._h_alu_rr if fmt == "rd_rs_rs" else su._h_alu_ri
        return handler, (op, ev)
    if fmt == "load":
        return su._h_load, su._LOAD_SIZES[m]
    if fmt == "store":
        return su._h_store, su._STORE_SIZES[m]
    if fmt == "fload":
        return su._h_fload, 8 if m == "fld" else 4
    if fmt == "fstore":
        return su._h_fstore, 8 if m == "fsd" else 4
    if fmt == "frd_frs_frs":
        return su._h_fp_rr, su._FP_BINOPS[m]
    if fmt == "frd_frs_frs_frs":
        return su._h_fp_rrr, su._FP_TERNOPS[m]
    if fmt == "frd_frs":
        return su._h_fp_r, su._FP_UNOPS[m]
    if fmt == "frd_rs":
        return su._h_frd_rs, m == "fcvt_d_l"
    if fmt == "rd_frs":
        return su._h_rd_frs, m == "fcvt_l_d"
    if fmt == "rd_frs_frs":
        return su._h_fcmp, su._FP_CMPS[m]
    if fmt == "branch":
        return su._h_branch, su._BRANCH_CMP[m]
    if fmt == "branchz":
        return su._h_branchz, su._BRANCHZ_CMP[m]
    raise ExecutionError(f"no scalar semantics for {m} (fmt {fmt})")
