"""Scalar (CVA6-side) instruction semantics.

Implements the RV64-flavoured scalar IR: integer ALU with 64-bit wrapping,
M-extension multiply/divide with RISC-V division-by-zero semantics, D-
extension scalar FP on float64, loads/stores, and branches.  Returns the
branch target label when a branch is taken so the executor can redirect.
"""

from __future__ import annotations

import math
import struct
from typing import Optional

import numpy as np

from ..errors import ExecutionError
from ..isa.instructions import Instruction
from .memory import FunctionalMemory
from .state import ArchState
from .trace import ScalarEvent

_I64_MASK = (1 << 64) - 1


def _wrap(value: int) -> int:
    value &= _I64_MASK
    return value - (1 << 64) if value >= 1 << 63 else value


def _div(a: int, b: int) -> int:
    if b == 0:
        return -1
    if a == -(1 << 63) and b == -1:
        return a  # RISC-V overflow case: result is the dividend
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    return a - _div(a, b) * b


class ScalarUnit:
    """Executes one scalar instruction against the architectural state."""

    def __init__(self, state: ArchState, mem: FunctionalMemory) -> None:
        self.state = state
        self.mem = mem

    # ------------------------------------------------------------------
    def execute(self, instr: Instruction) -> tuple[Optional[str], ScalarEvent]:
        """Run ``instr``; return (taken-branch label or None, trace event)."""
        handler = getattr(self, f"_op_{instr.mnemonic}", None)
        if handler is not None:
            return handler(instr)
        fmt = instr.spec.fmt
        generic = self._GENERIC.get(fmt)
        if generic is None:
            raise ExecutionError(
                f"no scalar semantics for {instr.mnemonic} (fmt {fmt})"
            )
        return generic(self, instr)

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------
    _BINOPS = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "mulh": lambda a, b: (a * b) >> 64,
        "div": _div,
        "rem": _rem,
        "and_": lambda a, b: a & b,
        "or_": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "sll": lambda a, b: a << (b & 63),
        "srl": lambda a, b: (a & _I64_MASK) >> (b & 63),
        "sra": lambda a, b: a >> (b & 63),
        "slt": lambda a, b: int(a < b),
        "sltu": lambda a, b: int((a & _I64_MASK) < (b & _I64_MASK)),
        "min_": min,
        "max_": max,
    }
    _IMMOPS = {
        "addi": "add", "andi": "and_", "ori": "or_", "xori": "xor",
        "slli": "sll", "srli": "srl", "srai": "sra", "slti": "slt",
    }
    _MUL_KINDS = frozenset({"mul", "mulh"})
    _DIV_KINDS = frozenset({"div", "rem"})

    def _binop(self, instr: Instruction, b: int) -> tuple[None, ScalarEvent]:
        name = instr.mnemonic
        base = self._IMMOPS.get(name, name)
        a = self.state.x.read(instr.op("rs1").index)
        self.state.x.write(instr.op("rd").index, _wrap(self._BINOPS[base](a, b)))
        if base in self._MUL_KINDS:
            kind = "mul"
        elif base in self._DIV_KINDS:
            kind = "div"
        else:
            kind = "alu"
        return None, ScalarEvent(kind)

    def _fmt_rd_rs_rs(self, instr: Instruction):
        return self._binop(instr, self.state.x.read(instr.op("rs2").index))

    def _fmt_rd_rs_imm(self, instr: Instruction):
        return self._binop(instr, int(instr.op("imm")))

    def _op_li(self, instr: Instruction):
        self.state.x.write(instr.op("rd").index, _wrap(int(instr.op("imm"))))
        return None, ScalarEvent("alu")

    def _op_mv(self, instr: Instruction):
        self.state.x.write(
            instr.op("rd").index, self.state.x.read(instr.op("rs1").index)
        )
        return None, ScalarEvent("alu")

    def _op_nop(self, instr: Instruction):
        return None, ScalarEvent("alu")

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    _LOAD_SIZES = {"ld": 8, "lw": 4, "lh": 2, "lb": 1}
    _STORE_SIZES = {"sd": 8, "sw": 4, "sh": 2, "sb": 1}

    def _fmt_load(self, instr: Instruction):
        nbytes = self._LOAD_SIZES[instr.mnemonic]
        addr = self.state.x.read(instr.op("rs1").index) + int(instr.op("imm"))
        value = self.mem.load_int(addr, nbytes, signed=True)
        self.state.x.write(instr.op("rd").index, value)
        return None, ScalarEvent("load", addr=addr, nbytes=nbytes)

    def _fmt_store(self, instr: Instruction):
        nbytes = self._STORE_SIZES[instr.mnemonic]
        addr = self.state.x.read(instr.op("rs1").index) + int(instr.op("imm"))
        self.mem.store_int(addr, self.state.x.read(instr.op("rs2").index), nbytes)
        return None, ScalarEvent("store", addr=addr, nbytes=nbytes)

    def _fmt_fload(self, instr: Instruction):
        addr = self.state.x.read(instr.op("rs1").index) + int(instr.op("imm"))
        if instr.mnemonic == "fld":
            value, nbytes = self.mem.load_f64(addr), 8
        else:
            value, nbytes = self.mem.load_f32(addr), 4
        self.state.f.write(instr.op("frd").index, value)
        return None, ScalarEvent("load", addr=addr, nbytes=nbytes)

    def _fmt_fstore(self, instr: Instruction):
        addr = self.state.x.read(instr.op("rs1").index) + int(instr.op("imm"))
        value = self.state.f.read(instr.op("frs2").index)
        if instr.mnemonic == "fsd":
            self.mem.store_f64(addr, value)
            nbytes = 8
        else:
            self.mem.store_f32(addr, value)
            nbytes = 4
        return None, ScalarEvent("store", addr=addr, nbytes=nbytes)

    # ------------------------------------------------------------------
    # Scalar FP
    # ------------------------------------------------------------------
    _FP_BINOPS = {
        "fadd_d": lambda a, b: a + b,
        "fsub_d": lambda a, b: a - b,
        "fmul_d": lambda a, b: a * b,
        "fmin_d": min,
        "fmax_d": max,
        "fsgnj_d": lambda a, b: math.copysign(abs(a), b),
    }

    def _fmt_frd_frs_frs(self, instr: Instruction):
        a = self.state.f.read(instr.op("frs1").index)
        b = self.state.f.read(instr.op("frs2").index)
        if instr.mnemonic == "fdiv_d":
            # IEEE-754 semantics including x/0 -> inf and 0/0 -> NaN.
            with np.errstate(divide="ignore", invalid="ignore"):
                value = float(np.float64(a) / np.float64(b))
        else:
            value = self._FP_BINOPS[instr.mnemonic](a, b)
        self.state.f.write(instr.op("frd").index, value)
        return None, ScalarEvent("fp")

    def _fmt_frd_frs_frs_frs(self, instr: Instruction):
        a = self.state.f.read(instr.op("frs1").index)
        b = self.state.f.read(instr.op("frs2").index)
        c = self.state.f.read(instr.op("frs3").index)
        value = {
            "fmadd_d": a * b + c,
            "fmsub_d": a * b - c,
            "fnmadd_d": -(a * b) - c,
            "fnmsub_d": -(a * b) + c,
        }[instr.mnemonic]
        self.state.f.write(instr.op("frd").index, value)
        return None, ScalarEvent("fp")

    def _fmt_frd_frs(self, instr: Instruction):
        a = self.state.f.read(instr.op("frs1").index)
        value = {
            "fsqrt_d": lambda: math.sqrt(a) if a >= 0 else math.nan,
            "fmv_d": lambda: a,
            "fneg_d": lambda: -a,
            "fabs_d": lambda: abs(a),
        }[instr.mnemonic]()
        self.state.f.write(instr.op("frd").index, value)
        return None, ScalarEvent("fp")

    def _fmt_frd_rs(self, instr: Instruction):
        raw = self.state.x.read(instr.op("rs1").index)
        if instr.mnemonic == "fcvt_d_l":
            value = float(raw)
        else:  # fmv_d_x: reinterpret bits
            value = struct.unpack("<d", (raw & _I64_MASK).to_bytes(8, "little"))[0]
        self.state.f.write(instr.op("frd").index, value)
        return None, ScalarEvent("fp")

    def _fmt_rd_frs(self, instr: Instruction):
        a = self.state.f.read(instr.op("frs1").index)
        if instr.mnemonic == "fcvt_l_d":
            value = int(a)  # round towards zero
        else:  # fmv_x_d
            value = _wrap(int.from_bytes(struct.pack("<d", a), "little"))
        self.state.x.write(instr.op("rd").index, value)
        return None, ScalarEvent("fp")

    def _fmt_rd_frs_frs(self, instr: Instruction):
        a = self.state.f.read(instr.op("frs1").index)
        b = self.state.f.read(instr.op("frs2").index)
        value = {
            "feq_d": int(a == b),
            "flt_d": int(a < b),
            "fle_d": int(a <= b),
        }[instr.mnemonic]
        self.state.x.write(instr.op("rd").index, value)
        return None, ScalarEvent("fp")

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    _BRANCH_CMP = {
        "beq": lambda a, b: a == b,
        "bne": lambda a, b: a != b,
        "blt": lambda a, b: a < b,
        "bge": lambda a, b: a >= b,
        "bltu": lambda a, b: (a & _I64_MASK) < (b & _I64_MASK),
        "bgeu": lambda a, b: (a & _I64_MASK) >= (b & _I64_MASK),
    }
    _BRANCHZ_CMP = {
        "beqz": lambda a: a == 0,
        "bnez": lambda a: a != 0,
        "bltz": lambda a: a < 0,
        "bgez": lambda a: a >= 0,
        "blez": lambda a: a <= 0,
        "bgtz": lambda a: a > 0,
    }

    def _fmt_branch(self, instr: Instruction):
        a = self.state.x.read(instr.op("rs1").index)
        b = self.state.x.read(instr.op("rs2").index)
        taken = self._BRANCH_CMP[instr.mnemonic](a, b)
        kind = "branch_taken" if taken else "branch"
        return (instr.op("target") if taken else None), ScalarEvent(kind)

    def _fmt_branchz(self, instr: Instruction):
        a = self.state.x.read(instr.op("rs1").index)
        taken = self._BRANCHZ_CMP[instr.mnemonic](a)
        kind = "branch_taken" if taken else "branch"
        return (instr.op("target") if taken else None), ScalarEvent(kind)

    def _op_j(self, instr: Instruction):
        return instr.op("target"), ScalarEvent("branch_taken")

    _GENERIC = {
        "rd_rs_rs": _fmt_rd_rs_rs,
        "rd_rs_imm": _fmt_rd_rs_imm,
        "load": _fmt_load,
        "store": _fmt_store,
        "fload": _fmt_fload,
        "fstore": _fmt_fstore,
        "frd_frs_frs": _fmt_frd_frs_frs,
        "frd_frs_frs_frs": _fmt_frd_frs_frs_frs,
        "frd_frs": _fmt_frd_frs,
        "frd_rs": _fmt_frd_rs,
        "rd_frs": _fmt_rd_frs,
        "rd_frs_frs": _fmt_rd_frs_frs,
        "branch": _fmt_branch,
        "branchz": _fmt_branchz,
    }
