"""Dynamic execution trace: the contract between functional and timing.

The functional executor emits one event per retired instruction.  The
timing engine replays the event stream against a machine model — it never
re-executes semantics, so functional correctness and cycle estimation stay
decoupled (the classic functional/timing split of architecture simulators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Optional

from ..isa.instructions import Instruction, MemPattern


@dataclass(frozen=True, slots=True)
class MemAccess:
    """Shape of a vector memory access (addresses, not data)."""

    base: int
    stride: int  # bytes between consecutive elements
    count: int  # number of elements transferred
    ew_bytes: int  # element width in bytes
    pattern: MemPattern
    is_store: bool

    @property
    def total_bytes(self) -> int:
        return self.count * self.ew_bytes

    @property
    def is_unit_stride(self) -> bool:
        return self.pattern in (MemPattern.UNIT, MemPattern.MASK)


class ScalarEvent:
    """A retired scalar instruction, classified for the CVA6 timing model.

    Hand-rolled (not a dataclass): one is built per retired scalar
    instruction, and plain ``__init__`` assignment is markedly cheaper
    than the frozen-dataclass ``object.__setattr__`` chain.  Events are
    immutable by convention; payload-free kinds share singletons.
    """

    __slots__ = ("kind", "addr", "nbytes")

    def __init__(self, kind: str, addr: Optional[int] = None,
                 nbytes: int = 0) -> None:
        self.kind = kind  # alu | mul | div | fp | load | store | branch...
        self.addr = addr
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScalarEvent({self.kind!r}, addr={self.addr})"

    def __getstate__(self):
        return (self.kind, self.addr, self.nbytes)

    def __setstate__(self, state):
        self.kind, self.addr, self.nbytes = state


class VsetvlEvent:
    """A vsetvli: costs a scalar cycle and reconfigures the vector unit."""

    __slots__ = ("vl", "sew", "lmul")

    def __init__(self, vl: int, sew: int, lmul: int) -> None:
        self.vl = vl
        self.sew = sew
        self.lmul = lmul

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VsetvlEvent(vl={self.vl}, sew={self.sew}, lmul={self.lmul})"

    def __getstate__(self):
        return (self.vl, self.sew, self.lmul)

    def __setstate__(self, state):
        self.vl, self.sew, self.lmul = state


# repro-lint: disable=RL401  needs __dict__: cached_property + the
# timing engine's per-instance _tinfo decode cache live there
class VectorEvent:
    """A retired vector instruction with its dynamic configuration.

    Keeps an open ``__dict__`` (no slots): derived, replay-invariant
    quantities — ``spec``, ``flops``, the timing engine's decode tuple —
    are cached on the instance so replay-many pays decode once.
    """

    def __init__(self, instr: Instruction, vl: int, sew: int, lmul: int,
                 mem: Optional[MemAccess] = None,
                 slide_amount: int = 0) -> None:
        self.instr = instr
        self.vl = vl
        self.sew = sew
        self.lmul = lmul
        self.mem = mem
        #: For slides: the dynamic slide amount in elements.
        self.slide_amount = slide_amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorEvent({self.instr.mnemonic}, vl={self.vl})"

    @cached_property
    def spec(self):
        return self.instr.spec

    @cached_property
    def flops(self) -> float:
        return self.spec.flops * self.vl

    @property
    def result_bytes(self) -> int:
        return self.vl * (self.sew // 8)


TraceEvent = object  # union of the three event types


@dataclass(slots=True)
class DynamicTrace:
    """Ordered event stream plus cheap aggregate counters.

    ``_plan`` caches the timing engine's compiled replay plan (see
    :mod:`repro.timing.replay_plan`) so the decode survives across the
    many machine models one capture is replayed against.  It is derived
    state: excluded from comparison and — via the explicit pickle
    protocol below — from serialized traces, which keeps pipe payloads
    and disk entries free of replay-only scratch.
    """

    events: list = field(default_factory=list)
    scalar_count: int = 0
    vector_count: int = 0
    total_flops: float = 0.0
    _plan: object = field(default=None, repr=False, compare=False)

    def __getstate__(self):
        return (self.events, self.scalar_count, self.vector_count,
                self.total_flops)

    def __setstate__(self, state):
        (self.events, self.scalar_count, self.vector_count,
         self.total_flops) = state
        self._plan = None

    def add_scalar(self, event: ScalarEvent) -> None:
        self.events.append(event)
        self.scalar_count += 1

    def add_vsetvl(self, event: VsetvlEvent) -> None:
        self.events.append(event)
        self.scalar_count += 1

    def add_vector(self, event: VectorEvent) -> None:
        self.events.append(event)
        self.vector_count += 1
        self.total_flops += event.flops

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def vector_events(self) -> Iterator[VectorEvent]:
        return (e for e in self.events if isinstance(e, VectorEvent))
