"""Dynamic execution trace: the contract between functional and timing.

The functional executor emits one event per retired instruction.  The
timing engine replays the event stream against a machine model — it never
re-executes semantics, so functional correctness and cycle estimation stay
decoupled (the classic functional/timing split of architecture simulators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..isa.instructions import Instruction, MemPattern


@dataclass(frozen=True)
class MemAccess:
    """Shape of a vector memory access (addresses, not data)."""

    base: int
    stride: int  # bytes between consecutive elements
    count: int  # number of elements transferred
    ew_bytes: int  # element width in bytes
    pattern: MemPattern
    is_store: bool

    @property
    def total_bytes(self) -> int:
        return self.count * self.ew_bytes

    @property
    def is_unit_stride(self) -> bool:
        return self.pattern in (MemPattern.UNIT, MemPattern.MASK)


@dataclass(frozen=True)
class ScalarEvent:
    """A retired scalar instruction, classified for the CVA6 timing model."""

    kind: str  # alu | mul | div | fp | load | store | branch | branch_taken
    addr: Optional[int] = None
    nbytes: int = 0


@dataclass(frozen=True)
class VsetvlEvent:
    """A vsetvli: costs a scalar cycle and reconfigures the vector unit."""

    vl: int
    sew: int
    lmul: int


@dataclass(frozen=True)
class VectorEvent:
    """A retired vector instruction with its dynamic configuration."""

    instr: Instruction
    vl: int
    sew: int
    lmul: int
    mem: Optional[MemAccess] = None
    #: For slides: the dynamic slide amount in elements.
    slide_amount: int = 0

    @property
    def spec(self):
        return self.instr.spec

    @property
    def flops(self) -> float:
        return self.spec.flops * self.vl

    @property
    def result_bytes(self) -> int:
        return self.vl * (self.sew // 8)


TraceEvent = object  # union of the three event types


@dataclass
class DynamicTrace:
    """Ordered event stream plus cheap aggregate counters."""

    events: list = field(default_factory=list)
    scalar_count: int = 0
    vector_count: int = 0
    total_flops: float = 0.0

    def add_scalar(self, event: ScalarEvent) -> None:
        self.events.append(event)
        self.scalar_count += 1

    def add_vsetvl(self, event: VsetvlEvent) -> None:
        self.events.append(event)
        self.scalar_count += 1

    def add_vector(self, event: VectorEvent) -> None:
        self.events.append(event)
        self.vector_count += 1
        self.total_flops += event.flops

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def vector_events(self) -> Iterator[VectorEvent]:
        return (e for e in self.events if isinstance(e, VectorEvent))
