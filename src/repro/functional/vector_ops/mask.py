"""Mask-register semantics (MASKU instructions).

All functions operate on boolean arrays of the first ``vl`` mask bits; the
engine handles packing to/from the RVV bit layout.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

LOGICAL: dict[str, Callable] = {
    "vmand": np.logical_and,
    "vmor": np.logical_or,
    "vmxor": np.logical_xor,
    "vmnand": lambda a, b: ~np.logical_and(a, b),
    "vmnor": lambda a, b: ~np.logical_or(a, b),
    "vmxnor": lambda a, b: ~np.logical_xor(a, b),
    "vmandn": lambda a, b: np.logical_and(a, ~b),
    "vmorn": lambda a, b: np.logical_or(a, ~b),
}


def cpop(bits: np.ndarray) -> int:
    """Population count of the active mask bits."""
    return int(np.count_nonzero(bits))


def first(bits: np.ndarray) -> int:
    """Index of the first set bit, or -1 when none is set."""
    hits = np.flatnonzero(bits)
    return int(hits[0]) if hits.size else -1


def set_before_first(bits: np.ndarray) -> np.ndarray:
    """vmsbf: 1 on all elements strictly before the first set bit."""
    idx = first(bits)
    out = np.zeros(bits.size, dtype=bool)
    out[: bits.size if idx < 0 else idx] = True
    return out


def set_including_first(bits: np.ndarray) -> np.ndarray:
    """vmsif: 1 on all elements up to and including the first set bit."""
    idx = first(bits)
    out = np.zeros(bits.size, dtype=bool)
    out[: bits.size if idx < 0 else idx + 1] = True
    return out


def set_only_first(bits: np.ndarray) -> np.ndarray:
    """vmsof: 1 only on the first set bit."""
    idx = first(bits)
    out = np.zeros(bits.size, dtype=bool)
    if idx >= 0:
        out[idx] = True
    return out


def iota(bits: np.ndarray) -> np.ndarray:
    """viota: exclusive prefix sum of the mask bits (as int64)."""
    return np.concatenate(([0], np.cumsum(bits.astype(np.int64))[:-1]))


M_UNARY: dict[str, Callable] = {
    "vmsbf_m": set_before_first,
    "vmsif_m": set_including_first,
    "vmsof_m": set_only_first,
}
