"""Vector memory access semantics (VLSU instructions).

Loads and stores move raw bytes — signedness never matters at this level,
so all data travels in unsigned views of the effective element width (EEW).
The EEW of ``vle32`` under SEW=64 differs from SEW; per RVV 1.0 the
effective LMUL is rescaled as ``EMUL = EEW/SEW * LMUL``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import IllegalInstructionError
from ...isa.instructions import MemPattern


@dataclass(frozen=True)
class MemShape:
    """Decoded shape of a vector memory instruction."""

    ew_bytes: int
    emul: int  # effective LMUL of the data register group
    count: int  # elements moved (or bytes for mask loads)


def eew_from_mnemonic(mnemonic: str) -> int:
    """Extract the encoded element width in bits (vle64_v -> 64)."""
    digits = "".join(ch for ch in mnemonic.split("_")[0] if ch.isdigit())
    if not digits:
        raise IllegalInstructionError(f"{mnemonic} has no element width")
    return int(digits)


def data_shape(mnemonic: str, pattern: MemPattern, vl: int, sew: int,
               lmul: int) -> MemShape:
    """Resolve EEW/EMUL/element count for a memory instruction."""
    if pattern is MemPattern.MASK:
        # vlm/vsm move ceil(vl/8) bytes into the mask layout, EMUL=1.
        return MemShape(ew_bytes=1, emul=1, count=(vl + 7) // 8)
    eew = eew_from_mnemonic(mnemonic)
    if pattern is MemPattern.INDEXED:
        # Indexed accesses use SEW-wide data; the mnemonic width is the
        # *index* EEW, handled separately by the engine.
        return MemShape(ew_bytes=sew // 8, emul=lmul, count=vl)
    emul = max(1, eew * lmul // sew)
    if eew * lmul % sew and eew * lmul // sew == 0:
        emul = 1  # fractional EMUL collapses to one register here
    return MemShape(ew_bytes=eew // 8, emul=emul, count=vl)


def unit_dtype(ew_bytes: int) -> np.dtype:
    """Unsigned dtype moving ``ew_bytes``-wide memory elements."""
    return np.dtype(f"u{ew_bytes}")
