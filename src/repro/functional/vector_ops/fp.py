"""Floating-point vector semantics (VMFPU instructions).

Binary functions take ``(vs2, op1)`` in RVV assembly order; FMA functions
take ``(vd, op1, vs2)`` where ``op1`` is vs1 or the splatted f-register.

Known fidelity notes (documented deviations, consistent with the golden
NumPy models used in tests):

* FMA is computed as ``a*b + c`` with an intermediate rounding step —
  NumPy has no fused multiply-add.  Kernels and goldens share the rounding.
* ``vfmin/vfmax`` use ``np.fmin/np.fmax``, which return the non-NaN operand,
  matching the RISC-V (IEEE 754-2019 minimumNumber) behaviour.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def _div(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return vs2 / op1


def _rdiv(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return op1 / vs2


def _sqrt(vs2: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return np.sqrt(vs2)


def _sign_inject(mode: str) -> Callable:
    """Bit-exact sign injection (handles -0.0 and NaN payloads)."""

    def apply(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
        bits = vs2.dtype.itemsize * 8
        utype = np.dtype(f"u{vs2.dtype.itemsize}")
        sign = np.array(1 << (bits - 1), dtype=utype)
        mag = vs2.view(utype) & ~sign
        s2 = vs2.view(utype) & sign
        s1 = np.ascontiguousarray(op1, dtype=vs2.dtype).view(utype) & sign
        if mode == "j":
            new_sign = s1
        elif mode == "jn":
            new_sign = s1 ^ sign
        else:  # jx
            new_sign = s1 ^ s2
        return (mag | new_sign).view(vs2.dtype)

    return apply


BINOPS: dict[str, Callable] = {
    "vfadd": np.add,
    "vfsub": np.subtract,
    "vfrsub": lambda vs2, op1: np.subtract(op1, vs2),
    "vfmul": np.multiply,
    "vfdiv": _div,
    "vfrdiv": _rdiv,
    "vfmin": np.fmin,
    "vfmax": np.fmax,
    "vfsgnj": _sign_inject("j"),
    "vfsgnjn": _sign_inject("jn"),
    "vfsgnjx": _sign_inject("jx"),
}

UNARY: dict[str, Callable] = {
    "vfsqrt_v": _sqrt,
    "vfabs_v": np.abs,
    "vfneg_v": np.negative,
}

COMPARES: dict[str, Callable] = {
    "vmfeq": np.equal,
    "vmfne": np.not_equal,
    "vmflt": np.less,
    "vmfle": np.less_equal,
    "vmfgt": np.greater,
    "vmfge": np.greater_equal,
}

#: func(vd, op1, vs2) following the RVV accumulate definitions.
FMA: dict[str, Callable] = {
    "vfmacc": lambda vd, a, b: a * b + vd,
    "vfnmacc": lambda vd, a, b: -(a * b) - vd,
    "vfmsac": lambda vd, a, b: a * b - vd,
    "vfnmsac": lambda vd, a, b: -(a * b) + vd,
    "vfmadd": lambda vd, a, b: a * vd + b,
    "vfmsub": lambda vd, a, b: a * vd - b,
    "vfnmadd": lambda vd, a, b: -(a * vd) - b,
    "vfnmsub": lambda vd, a, b: -(a * vd) + b,
    "vfwmacc": lambda vd, a, b: a * b + vd,  # operands pre-widened
}

#: Widening FP binary ops (operands pre-widened to 2*SEW by the engine).
WIDENING: dict[str, Callable] = {
    "vfwadd": np.add,
    "vfwmul": np.multiply,
}
