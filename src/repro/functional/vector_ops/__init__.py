"""Pure element-wise semantics of the RVV subset, grouped per family.

Each module exports plain functions / tables over NumPy arrays; all state
handling (operand fetch, masking, register writeback) lives in
:mod:`repro.functional.vector`.  Keeping semantics pure makes them directly
reusable as golden references in property-based tests.
"""

from . import arith, fp, mask, mem, permute, reduce as reduce_ops

__all__ = ["arith", "fp", "mask", "mem", "permute", "reduce_ops"]
