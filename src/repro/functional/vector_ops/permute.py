"""Slide / gather / compress semantics (SLDU instructions).

Functions return the full destination body (vl elements); the engine
applies masking and the slideup "elements below OFFSET are untouched" rule
via the returned write mask where needed.
"""

from __future__ import annotations

import numpy as np


def slideup(vs2: np.ndarray, dest: np.ndarray, offset: int) -> np.ndarray:
    """vslideup: dest[i] = vs2[i - offset] for i >= offset.

    Elements below ``offset`` keep the destination's previous contents
    (RVV: they are not part of the body).
    """
    vl = dest.size
    out = dest.copy()
    if offset < vl:
        out[offset:] = vs2[: vl - offset]
    return out


def slidedown(vs2_full: np.ndarray, vl: int, offset: int) -> np.ndarray:
    """vslidedown: dest[i] = vs2[i + offset], zero beyond the source group.

    ``vs2_full`` must contain the whole register group (VLMAX elements),
    because slidedown may read beyond vl.
    """
    out = np.zeros(vl, dtype=vs2_full.dtype)
    avail = max(0, min(vl, vs2_full.size - offset))
    if avail:
        out[:avail] = vs2_full[offset:offset + avail]
    return out


def slide1up(vs2: np.ndarray, scalar, vl: int) -> np.ndarray:
    """Shift elements up one slot; ``scalar`` enters at index 0."""
    out = np.empty(vl, dtype=vs2.dtype)
    out[0] = scalar
    out[1:] = vs2[: vl - 1]
    return out


def slide1down(vs2: np.ndarray, scalar, vl: int) -> np.ndarray:
    """Shift elements down one slot; ``scalar`` enters at vl-1."""
    out = np.empty(vl, dtype=vs2.dtype)
    out[: vl - 1] = vs2[1:vl]
    out[vl - 1] = scalar
    return out


def rgather(vs2_full: np.ndarray, indices: np.ndarray, vlmax: int) -> np.ndarray:
    """vrgather: dest[i] = indices[i] >= vlmax ? 0 : vs2[indices[i]]."""
    idx = indices.astype(np.int64)
    out = np.zeros(idx.size, dtype=vs2_full.dtype)
    valid = (idx >= 0) & (idx < min(vlmax, vs2_full.size))
    out[valid] = vs2_full[idx[valid]]
    return out


def compress(vs2: np.ndarray, select: np.ndarray, dest: np.ndarray) -> np.ndarray:
    """vcompress: pack selected elements to the front; tail undisturbed."""
    packed = vs2[select[: vs2.size]]
    out = dest.copy()
    out[: packed.size] = packed
    return out
