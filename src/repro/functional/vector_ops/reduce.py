"""Reduction semantics (vred*/vfred* instructions).

A reduction folds ``vs2[0..vl-1]`` into the scalar seed ``vs1[0]`` and
writes the result to element 0 of ``vd``.

Ordering note: ``vfredosum`` is architecturally a strictly ordered sum.
We compute both ordered and unordered FP sums with ``np.add.reduce`` over
float64, which is deterministic but may differ from a strictly sequential
sum in the last ULPs; golden models in tests use matching tolerance.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def _sum(values: np.ndarray, seed) -> np.ndarray:
    with np.errstate(over="ignore"):
        return values.dtype.type(seed + np.add.reduce(values, dtype=values.dtype))


def _minmax(npfunc, reducer) -> Callable:
    def apply(values: np.ndarray, seed):
        if values.size == 0:
            return values.dtype.type(seed)
        return values.dtype.type(npfunc(seed, reducer(values)))

    return apply


REDUCTIONS: dict[str, Callable] = {
    "vredsum_vs": _sum,
    "vredmax_vs": _minmax(max, np.max),
    "vredmin_vs": _minmax(min, np.min),
    "vredand_vs": _minmax(np.bitwise_and, np.bitwise_and.reduce),
    "vredor_vs": _minmax(np.bitwise_or, np.bitwise_or.reduce),
    "vredxor_vs": _minmax(np.bitwise_xor, np.bitwise_xor.reduce),
    "vfredusum_vs": _sum,
    "vfredosum_vs": _sum,
    "vfredmax_vs": _minmax(np.fmax, np.max),
    "vfredmin_vs": _minmax(np.fmin, np.min),
}
