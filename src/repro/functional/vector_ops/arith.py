"""Integer vector arithmetic semantics (VALU instructions).

All binary functions take ``(vs2, op1)`` where ``op1`` is the vs1 array or
a splatted scalar/immediate, matching the RVV assembly operand order
``vop.vv vd, vs2, vs1`` (so ``vsub`` computes ``vs2 - op1`` and ``vrsub``
computes ``op1 - vs2``).  Wrapping arithmetic uses unsigned dtypes; ordered
comparisons and arithmetic shifts declare ``signed=True`` so the engine
fetches operands in the signed view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class IntOp:
    """An integer vector operation: its ufunc and signedness."""
    func: Callable[[np.ndarray, np.ndarray], np.ndarray]
    signed: bool = False


def _shift_amount(op1: np.ndarray, sew_bits: int) -> np.ndarray:
    return (op1.astype(np.uint64) & np.uint64(sew_bits - 1)).astype(op1.dtype)


def _sll(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
    return np.left_shift(vs2, _shift_amount(op1, vs2.dtype.itemsize * 8))


def _srl(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
    return np.right_shift(vs2, _shift_amount(op1, vs2.dtype.itemsize * 8))


def _sra(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
    # vs2 arrives signed (signed=True); numpy's >> on signed ints is
    # arithmetic.  The shift amount must be cast back to the signed dtype.
    amount = _shift_amount(op1.view(f"u{vs2.dtype.itemsize}"),
                           vs2.dtype.itemsize * 8)
    return np.right_shift(vs2, amount.astype(vs2.dtype))


def _elementwise(pyfunc: Callable[[int, int], int]) -> Callable:
    """Lift an exact Python-int binary function to arrays.

    Used for div/rem/mulh, whose RISC-V corner cases (division by zero,
    signed overflow, full-width products) are awkward to express safely in
    fixed-width NumPy arithmetic.  These ops are rare in real kernels, so
    the per-element cost is acceptable.
    """

    def apply(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
        values = [pyfunc(int(a), int(b))
                  for a, b in zip(vs2.tolist(), op1.tolist())]
        bits = vs2.dtype.itemsize * 8
        lo, hi = -(1 << (bits - 1)), 1 << bits
        wrapped = [v & (hi - 1) for v in values]
        signed = [v + 2 * lo if v >= -lo else v for v in wrapped]
        return np.array(signed, dtype=vs2.dtype)

    return apply


def _py_div(a: int, b: int) -> int:
    """RISC-V signed division: x/0 = -1, overflow returns the dividend."""
    if b == 0:
        return -1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _py_rem(a: int, b: int) -> int:
    if b == 0:
        return a
    return a - _py_div(a, b) * b


def _mulh_signed(vs2: np.ndarray, op1: np.ndarray) -> np.ndarray:
    bits = vs2.dtype.itemsize * 8
    return _elementwise(lambda a, b: (a * b) >> bits)(vs2, op1)


_div_signed = _elementwise(_py_div)
_rem_signed = _elementwise(_py_rem)


BINOPS: dict[str, IntOp] = {
    "vadd": IntOp(np.add),
    "vsub": IntOp(np.subtract),
    "vrsub": IntOp(lambda vs2, op1: np.subtract(op1, vs2)),
    "vand": IntOp(np.bitwise_and),
    "vor": IntOp(np.bitwise_or),
    "vxor": IntOp(np.bitwise_xor),
    "vsll": IntOp(_sll),
    "vsrl": IntOp(_srl),
    "vsra": IntOp(_sra, signed=True),
    "vmin": IntOp(np.minimum, signed=True),
    "vmax": IntOp(np.maximum, signed=True),
    "vminu": IntOp(np.minimum),
    "vmaxu": IntOp(np.maximum),
    "vmul": IntOp(np.multiply),
    "vmulh": IntOp(_mulh_signed, signed=True),
    "vdiv": IntOp(_div_signed, signed=True),
    "vrem": IntOp(_rem_signed, signed=True),
}

#: Integer compares producing mask bits; all ordered ones are signed except
#: the explicit unsigned variants.
COMPARES: dict[str, IntOp] = {
    "vmseq": IntOp(np.equal),
    "vmsne": IntOp(np.not_equal),
    "vmslt": IntOp(np.less, signed=True),
    "vmsle": IntOp(np.less_equal, signed=True),
    "vmsgt": IntOp(np.greater, signed=True),
    "vmsltu": IntOp(np.less),
    "vmsleu": IntOp(np.less_equal),
}

#: Integer multiply-accumulate: func(vd, op1, vs2).
FMA: dict[str, Callable] = {
    "vmacc": lambda vd, a, b: vd + a * b,
    "vnmsac": lambda vd, a, b: vd - a * b,
}

#: Widening integer ops (operands SEW, result 2*SEW, signed).
WIDENING: dict[str, Callable] = {
    "vwadd": lambda vs2, op1: vs2 + op1,
    "vwmul": lambda vs2, op1: vs2 * op1,
}
