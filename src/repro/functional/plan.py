"""Per-instruction execution plans: the interpreter's pre-decode stage.

The functional interpreter retires tens of millions of instructions per
sweep, so per-retirement string surgery (``mnemonic.rsplit``), operand
dictionary lookups (``instr.op("vd").index``) and handler resolution
(``getattr`` / dict-of-``op()`` chains) dominate the constant factor.  A
:class:`InstrPlan` resolves all of that **once per static instruction**:

* operand register *indices* as plain attributes (``p.vd``, ``p.rs1``...);
* the mnemonic base (``vadd_vv`` -> ``vadd``) and the vector dispatch key
  (``vkind``) with the semantic callable pre-resolved into ``p.aux``;
* the scalar handler function (``p.scalar_fn``) with its per-mnemonic
  data (op callable, byte width, comparison...) in ``p.aux``;
* branch targets resolved to instruction *indices* (``p.target_idx``);
* for ``vsetvli``: the decoded :class:`VType` plus its integer SEW/LMUL.

Plans are cached: :func:`plans_for` memoizes the full decoded program on
the (immutable) :class:`~repro.isa.program.Program` instance, and
:func:`plan_for_instr` memoizes single-instruction decodes for direct
``VectorUnit.execute`` / ``ScalarUnit.execute`` callers (unit tests).
Only quantities that cannot depend on dynamic state (``vl``, ``vtype``)
are pre-resolved; dtypes still resolve per-retirement from the live SEW
through the memoized singletons in :mod:`repro.functional.state`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import AssemblerError, ExecutionError
from ..isa.instructions import ExecUnit, Instruction, MemPattern
from ..isa.vtype import VType
from . import scalar as _scalar
from .vector_ops import arith, fp, mask as maskops, mem as memops
from .vector_ops.reduce import REDUCTIONS

# Executor-level dispatch tags.
K_HALT, K_LABEL, K_VSETVLI, K_VECTOR, K_SCALAR = range(5)

# Operand-1 source modes (vs1 / rs1 / imm / frs1 / none).
OP1_NONE, OP1_V, OP1_X, OP1_I, OP1_F = range(5)

class InstrPlan:
    """Flat, fully-resolved execution plan for one static instruction."""

    __slots__ = ("instr", "spec", "mnemonic", "base", "masked",
                 "kind", "vkind", "op1_mode", "flops",
                 "vd", "vs1", "vs2", "vs3", "rd", "rs1", "rs2",
                 "frd", "frs1", "frs2", "frs3",
                 "imm", "target", "target_idx",
                 "aux", "scalar_fn")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrPlan {self.mnemonic}>"


def _op1_mode(fmt: str) -> int:
    """Mirror of ``VectorUnit._fetch_op1``'s format classification."""
    if fmt.endswith("vv") or fmt in ("vvv", "mm", "red_vs"):
        return OP1_V
    if "x" in fmt.rsplit("_", 1)[-1] or fmt == "vvx":
        return OP1_X
    if fmt == "vvi":
        return OP1_I
    if fmt in ("vvf", "fma_vf"):
        return OP1_F
    return OP1_NONE


def _decode_vector(p: InstrPlan) -> None:
    """Resolve the vector dispatch key and semantic callable."""
    spec = p.spec
    m = p.mnemonic
    base = p.base
    if spec.is_mem:
        p.vkind = "mem"
        if spec.mem_pattern is not MemPattern.MASK:
            p.aux = memops.eew_from_mnemonic(m)
        return
    if spec.is_reduction:
        is_fp = m.startswith("vf")
        signed = not is_fp and m not in ("vredand_vs", "vredor_vs",
                                         "vredxor_vs")
        p.vkind = "red"
        p.aux = (REDUCTIONS[m], is_fp, signed)
        return
    if spec.is_slide:
        if m in ("vslideup_vx", "vslideup_vi", "vslidedown_vx",
                 "vslidedown_vi"):
            p.vkind = "slide_updn"
            p.aux = (m.startswith("vslideup"), spec.fmt == "slide_vx")
        elif spec.slide1:
            p.vkind = "slide1"
            p.aux = ("up" in m, spec.fmt == "slide1_vf")
        elif m == "vrgather_vv":
            p.vkind = "rgather"
        elif m == "vcompress_vm":
            p.vkind = "compress"
        else:  # pragma: no cover - table is closed
            raise ExecutionError(f"unhandled permute {m}")
        return
    if spec.unit is ExecUnit.MASKU:
        if spec.mask_logical:
            p.vkind = "mask_log"
            p.aux = maskops.LOGICAL[base]
        elif m in ("vcpop_m", "vfirst_m"):
            p.vkind = "mask_scalar"
            p.aux = maskops.cpop if m == "vcpop_m" else maskops.first
        elif m in maskops.M_UNARY:
            p.vkind = "m_unary"
            p.aux = maskops.M_UNARY[m]
        elif m == "viota_m":
            p.vkind = "iota"
        elif m == "vid_v":
            p.vkind = "vid"
        else:  # pragma: no cover - table is closed
            raise ExecutionError(f"unhandled mask op {m}")
        return
    if spec.mask_producer:
        p.vkind = "cmp"
        if spec.unit is ExecUnit.VMFPU and base in fp.COMPARES:
            p.aux = (True, fp.COMPARES[base], False)
        else:
            op = arith.COMPARES[base]
            p.aux = (False, op.func, op.signed)
        return
    # Splats, scalar moves and merges (unusual formats) come first, in the
    # same order the interpreter used to test mnemonics.
    if m == "vmv_v_v":
        p.vkind = "mv_vv"
        return
    if m in ("vmv_v_x", "vmv_v_i", "vfmv_v_f"):
        p.vkind = "splat"
        return
    if m == "vmv_s_x":
        p.vkind = "mv_sx"
        return
    if m == "vmv_x_s":
        p.vkind = "mv_xs"
        return
    if m == "vfmv_s_f":
        p.vkind = "fmv_sf"
        return
    if m == "vfmv_f_s":
        p.vkind = "fmv_fs"
        return
    if base in ("vmerge", "vfmerge"):
        p.vkind = "merge"
        p.aux = m.startswith("vf")
        return
    if spec.unit is ExecUnit.VMFPU:
        if m in fp.UNARY:
            p.vkind = "fp_unary"
            p.aux = fp.UNARY[m]
        elif m.startswith(("vfcvt", "vfwcvt", "vfncvt")):
            p.vkind = "fp_cvt"
        elif base in fp.FMA:
            p.vkind = "fp_fma_w" if spec.widens else "fp_fma"
            p.aux = fp.FMA[base]
        elif spec.widens:
            p.vkind = "fp_widen"
            p.aux = fp.WIDENING[base]
        else:
            p.vkind = "fp_bin"
            p.aux = fp.BINOPS[base]
        return
    if base in arith.FMA:
        p.vkind = "int_fma"
        p.aux = arith.FMA[base]
    elif spec.widens:
        p.vkind = "int_widen"
        p.aux = arith.WIDENING[base]
    elif spec.narrows:
        p.vkind = "int_narrow"
    else:
        p.vkind = "int_bin"
        p.aux = arith.BINOPS[base]


def decode(instr: Instruction,
           labels: Optional[dict[str, int]] = None) -> InstrPlan:
    """Build the plan for one instruction (targets resolved via ``labels``)."""
    spec = instr.spec
    p = InstrPlan()
    p.instr = instr
    p.spec = spec
    m = spec.mnemonic
    p.mnemonic = m
    p.base = m.rsplit("_", 1)[0]
    ops = instr.ops
    get = ops.get
    p.masked = bool(get("masked", False))
    reg = get("vd")
    p.vd = reg.index if reg is not None else None
    reg = get("vs1")
    p.vs1 = reg.index if reg is not None else None
    reg = get("vs2")
    p.vs2 = reg.index if reg is not None else None
    reg = get("vs3")
    p.vs3 = reg.index if reg is not None else None
    reg = get("rd")
    p.rd = reg.index if reg is not None else None
    reg = get("rs1")
    p.rs1 = reg.index if reg is not None else None
    reg = get("rs2")
    p.rs2 = reg.index if reg is not None else None
    reg = get("frd")
    p.frd = reg.index if reg is not None else None
    reg = get("frs1")
    p.frs1 = reg.index if reg is not None else None
    reg = get("frs2")
    p.frs2 = reg.index if reg is not None else None
    reg = get("frs3")
    p.frs3 = reg.index if reg is not None else None
    imm = get("imm")
    p.imm = int(imm) if imm is not None else None
    p.target = get("target")
    if p.target is not None and labels is not None:
        try:
            p.target_idx = labels[p.target]
        except KeyError:
            raise AssemblerError(
                f"undefined label {p.target!r}") from None
    else:
        p.target_idx = None
    p.aux = None
    p.scalar_fn = None
    p.vkind = None
    p.op1_mode = _op1_mode(spec.fmt)
    p.flops = spec.flops

    if m == "halt":
        p.kind = K_HALT
    elif m == "label":
        p.kind = K_LABEL
    elif m == "vsetvli":
        p.kind = K_VSETVLI
        vtype = VType(sew=ops["sew"], lmul=ops["lmul"])
        p.aux = (vtype, int(vtype.sew), int(vtype.lmul))
    elif spec.is_vector:
        p.kind = K_VECTOR
        _decode_vector(p)
    else:
        p.kind = K_SCALAR
        p.scalar_fn, p.aux = _scalar.resolve_scalar(spec)
    return p


def plan_for_instr(instr: Instruction) -> InstrPlan:
    """Single-instruction decode, memoized on the instruction object.

    Branch targets stay unresolved (``target_idx is None``); direct-call
    users (unit tests poking a lone instruction at a unit) never branch.
    """
    plan = instr.__dict__.get("_plan")
    if plan is None:
        plan = decode(instr)
        # Frozen dataclass: writing through __dict__ bypasses the guard.
        instr.__dict__["_plan"] = plan
    return plan


def plans_for(program) -> tuple[InstrPlan, ...]:
    """Decode (and memoize) the full execution plan of a program."""
    plans = program.__dict__.get("_plans")
    if plans is None:
        labels = program.labels
        plans = tuple(decode(instr, labels) for instr in program.instructions)
        program.__dict__["_plans"] = plans
    return plans
