"""The functional vector engine: RVV state handling + dispatch.

Fetches operands from the VRF, applies the pure semantics from
:mod:`repro.functional.vector_ops`, handles masking (mask-undisturbed) and
tail policy (tail-undisturbed, legal under agnosticism), and emits one
:class:`~repro.functional.trace.VectorEvent` per retired instruction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ExecutionError, IllegalInstructionError
from ..isa.instructions import ExecUnit, Instruction, MemPattern
from .memory import FunctionalMemory
from .state import ArchState, fp_dtype, int_dtype
from .trace import MemAccess, VectorEvent
from .vector_ops import arith, fp, mask as maskops, mem as memops, permute
from .vector_ops.reduce import REDUCTIONS


class VectorUnit:
    """Executes one vector instruction against the architectural state."""

    def __init__(self, state: ArchState, mem: FunctionalMemory) -> None:
        self.state = state
        self.mem = mem

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, instr: Instruction) -> VectorEvent:
        spec = instr.spec
        vt = self.state.require_legal_vtype()
        vl = self.state.vl
        sew = int(vt.sew)
        lmul = int(vt.lmul)
        mask_bits = self.state.v.read_mask(0, vl) if instr.masked else None

        mem_access: Optional[MemAccess] = None
        slide_amount = 0
        if spec.is_mem:
            mem_access = self._mem(instr, vl, sew, lmul, mask_bits)
        elif spec.is_reduction:
            self._reduction(instr, vl, sew, lmul, mask_bits)
        elif spec.is_slide:
            slide_amount = self._permute(instr, vl, sew, lmul, mask_bits)
        elif spec.unit is ExecUnit.MASKU:
            self._masku(instr, vl, sew, lmul, mask_bits)
        elif spec.mask_producer:
            self._compare(instr, vl, sew, lmul, mask_bits)
        else:
            self._arith(instr, vl, sew, lmul, mask_bits)

        return VectorEvent(
            instr=instr, vl=vl, sew=sew, lmul=lmul,
            mem=mem_access, slide_amount=slide_amount,
        )

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _base(instr: Instruction) -> str:
        """Mnemonic base without the form suffix (vadd_vv -> vadd)."""
        return instr.mnemonic.rsplit("_", 1)[0]

    def _fetch_op1(self, instr: Instruction, vl: int, dtype: np.dtype):
        """vs1 / rs1 / imm / frs1 operand resolved to an array or scalar."""
        fmt = instr.spec.fmt
        if fmt.endswith("vv") or fmt in ("vvv", "mm", "red_vs"):
            emul = self._emul_for(instr)
            return self.state.v.read_elems(
                instr.op("vs1").index, vl, dtype, emul)
        if "x" in fmt.rsplit("_", 1)[-1] or fmt == "vvx":
            raw = self.state.x.read(instr.op("rs1").index)
            return self._splat_int(raw, dtype, vl)
        if fmt in ("vvi",):
            return self._splat_int(int(instr.op("imm")), dtype, vl)
        if fmt in ("vvf", "fma_vf"):
            return np.full(vl, self.state.f.read(instr.op("frs1").index),
                           dtype=dtype)
        raise ExecutionError(f"cannot fetch op1 for format {fmt}")

    @staticmethod
    def _splat_int(value: int, dtype: np.dtype, vl: int) -> np.ndarray:
        bits = dtype.itemsize * 8
        value &= (1 << bits) - 1
        return np.full(vl, value, dtype=np.dtype(f"u{dtype.itemsize}")) \
            .view(dtype).copy()

    def _emul_for(self, instr: Instruction) -> int:
        return int(self.state.vtype.lmul)

    # ------------------------------------------------------------------
    # Integer / FP element-wise
    # ------------------------------------------------------------------
    def _arith(self, instr: Instruction, vl: int, sew: int, lmul: int,
               mask_bits) -> None:
        spec = instr.spec
        mnemonic = instr.mnemonic
        base = self._base(instr)

        # Splats and scalar moves first (they have unusual formats).
        if mnemonic in ("vmv_v_v",):
            src = self.state.v.read_elems(
                instr.op("vs2").index, vl, int_dtype(sew), lmul)
            self._write(instr, src, lmul, mask_bits)
            return
        if mnemonic in ("vmv_v_x", "vmv_v_i", "vfmv_v_f"):
            dtype = fp_dtype(sew) if mnemonic == "vfmv_v_f" else int_dtype(sew)
            if mnemonic == "vmv_v_x":
                value = self._splat_int(
                    self.state.x.read(instr.op("rs1").index), dtype, vl)
            elif mnemonic == "vmv_v_i":
                value = self._splat_int(int(instr.op("imm")), dtype, vl)
            else:
                value = np.full(vl, self.state.f.read(instr.op("frs1").index),
                                dtype=dtype)
            self._write(instr, value, lmul, mask_bits)
            return
        if mnemonic == "vmv_s_x":
            self.state.v.write_elems(
                instr.op("vd").index,
                self._splat_int(self.state.x.read(instr.op("rs1").index),
                                int_dtype(sew), 1),
                emul=1)
            return
        if mnemonic == "vmv_x_s":
            value = self.state.v.read_elems(
                instr.op("vs2").index, 1, int_dtype(sew, signed=True), 1)[0]
            self.state.x.write(instr.op("rd").index, int(value))
            return
        if mnemonic == "vfmv_s_f":
            self.state.v.write_elems(
                instr.op("vd").index,
                np.array([self.state.f.read(instr.op("frs1").index)],
                         dtype=fp_dtype(sew)),
                emul=1)
            return
        if mnemonic == "vfmv_f_s":
            value = self.state.v.read_elems(
                instr.op("vs2").index, 1, fp_dtype(sew), 1)[0]
            self.state.f.write(instr.op("frd").index, float(value))
            return

        # Merges read v0 as selector regardless of `masked`.
        if base in ("vmerge", "vfmerge"):
            self._merge(instr, vl, sew, lmul)
            return

        if spec.unit is ExecUnit.VMFPU:
            self._fp_arith(instr, vl, sew, lmul, mask_bits, base)
        else:
            self._int_arith(instr, vl, sew, lmul, mask_bits, base)

    def _int_arith(self, instr, vl, sew, lmul, mask_bits, base) -> None:
        spec = instr.spec
        if base in arith.FMA:
            dtype = int_dtype(sew)
            vd = self.state.v.read_elems(instr.op("vd").index, vl, dtype, lmul)
            op1 = self._fetch_op1(instr, vl, dtype)
            vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
            with np.errstate(over="ignore"):
                result = arith.FMA[base](vd, op1, vs2).astype(dtype)
            self._write(instr, result, lmul, mask_bits)
            return
        if spec.widens:
            op = arith.WIDENING[base]
            narrow = int_dtype(sew, signed=True)
            wide = int_dtype(2 * sew, signed=True)
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, narrow, lmul).astype(wide)
            op1 = self._fetch_op1(instr, vl, narrow).astype(wide)
            result = op(vs2, op1).astype(wide)
            self._write(instr, result, 2 * lmul, mask_bits)
            return
        if spec.narrows:  # vnsrl
            wide_u = int_dtype(2 * sew)
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, wide_u, 2 * lmul)
            op1 = self._fetch_op1(instr, vl, wide_u)
            shift = (op1.astype(np.uint64) & np.uint64(2 * sew - 1)) \
                .astype(wide_u)
            result = np.right_shift(vs2, shift).astype(int_dtype(sew))
            self._write(instr, result, lmul, mask_bits)
            return
        op = arith.BINOPS[base]
        dtype = int_dtype(sew, signed=op.signed)
        vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
        op1 = self._fetch_op1(instr, vl, dtype)
        with np.errstate(over="ignore"):
            result = op.func(vs2, op1).astype(dtype)
        self._write(instr, result, lmul, mask_bits)

    def _fp_arith(self, instr, vl, sew, lmul, mask_bits, base) -> None:
        spec = instr.spec
        if instr.mnemonic in fp.UNARY:
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, fp_dtype(sew), lmul)
            self._write(instr, fp.UNARY[instr.mnemonic](vs2), lmul, mask_bits)
            return
        if instr.mnemonic.startswith("vfcvt") or instr.mnemonic.startswith(
                "vfwcvt") or instr.mnemonic.startswith("vfncvt"):
            self._convert(instr, vl, sew, lmul, mask_bits)
            return
        if base in fp.FMA:
            if spec.widens:  # vfwmacc
                wide = fp_dtype(2 * sew)
                vd = self.state.v.read_elems(
                    instr.op("vd").index, vl, wide, 2 * lmul)
                op1 = np.asarray(
                    self._fetch_op1(instr, vl, fp_dtype(sew)), dtype=wide)
                vs2 = self.state.v.read_elems(
                    instr.op("vs2").index, vl, fp_dtype(sew), lmul).astype(wide)
                result = fp.FMA[base](vd, op1, vs2)
                self._write(instr, result, 2 * lmul, mask_bits)
                return
            dtype = fp_dtype(sew)
            vd = self.state.v.read_elems(instr.op("vd").index, vl, dtype, lmul)
            op1 = self._fetch_op1(instr, vl, dtype)
            vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
            self._write(instr, fp.FMA[base](vd, op1, vs2), lmul, mask_bits)
            return
        if spec.widens:  # vfwadd/vfwmul
            wide = fp_dtype(2 * sew)
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, fp_dtype(sew), lmul).astype(wide)
            op1 = np.asarray(
                self._fetch_op1(instr, vl, fp_dtype(sew)), dtype=wide)
            result = fp.WIDENING[base](vs2, op1)
            self._write(instr, result, 2 * lmul, mask_bits)
            return
        op = fp.BINOPS[base]
        dtype = fp_dtype(sew)
        vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
        op1 = self._fetch_op1(instr, vl, dtype)
        self._write(instr, np.asarray(op(vs2, op1), dtype=dtype), lmul, mask_bits)

    def _convert(self, instr, vl, sew, lmul, mask_bits) -> None:
        mnem = instr.mnemonic
        if mnem == "vfcvt_x_f_v":
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, fp_dtype(sew), lmul)
            result = np.rint(vs2).astype(int_dtype(sew, signed=True))
            self._write(instr, result, lmul, mask_bits)
        elif mnem == "vfcvt_rtz_x_f_v":
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, fp_dtype(sew), lmul)
            result = np.trunc(vs2).astype(int_dtype(sew, signed=True))
            self._write(instr, result, lmul, mask_bits)
        elif mnem == "vfcvt_f_x_v":
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, int_dtype(sew, signed=True), lmul)
            self._write(instr, vs2.astype(fp_dtype(sew)), lmul, mask_bits)
        elif mnem == "vfwcvt_f_f_v":
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, fp_dtype(sew), lmul)
            self._write(instr, vs2.astype(fp_dtype(2 * sew)), 2 * lmul, mask_bits)
        elif mnem == "vfncvt_f_f_w":
            vs2 = self.state.v.read_elems(
                instr.op("vs2").index, vl, fp_dtype(2 * sew), 2 * lmul)
            self._write(instr, vs2.astype(fp_dtype(sew)), lmul, mask_bits)
        else:  # pragma: no cover
            raise ExecutionError(f"unhandled conversion {mnem}")

    def _merge(self, instr, vl, sew, lmul) -> None:
        selector = self.state.v.read_mask(0, vl)
        is_fp = instr.mnemonic.startswith("vf")
        dtype = fp_dtype(sew) if is_fp else int_dtype(sew)
        vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
        op1 = self._fetch_op1(instr, vl, dtype)
        result = np.where(selector, op1, vs2).astype(dtype)
        self._write(instr, result, lmul, None)

    def _compare(self, instr, vl, sew, lmul, mask_bits) -> None:
        base = self._base(instr)
        if instr.spec.unit is ExecUnit.VMFPU and base in fp.COMPARES:
            dtype = fp_dtype(sew)
            func = fp.COMPARES[base]
        else:
            op = arith.COMPARES[base]
            dtype = int_dtype(sew, signed=op.signed)
            func = op.func
        vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
        op1 = self._fetch_op1(instr, vl, dtype)
        bits = np.asarray(func(vs2, op1), dtype=bool)
        if mask_bits is not None:
            old = self.state.v.read_mask(instr.op("vd").index, vl)
            bits = np.where(mask_bits, bits, old)
        self.state.v.write_mask(instr.op("vd").index, bits)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _reduction(self, instr, vl, sew, lmul, mask_bits) -> None:
        mnem = instr.mnemonic
        is_fp = mnem.startswith("vf")
        signed = not is_fp and mnem not in ("vredand_vs", "vredor_vs",
                                            "vredxor_vs")
        dtype = fp_dtype(sew) if is_fp else int_dtype(sew, signed=signed)
        values = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
        if mask_bits is not None:
            values = values[mask_bits]
        seed = self.state.v.read_elems(instr.op("vs1").index, 1, dtype, 1)[0]
        result = REDUCTIONS[mnem](values, seed)
        self.state.v.write_elems(
            instr.op("vd").index, np.array([result], dtype=dtype), emul=1)

    # ------------------------------------------------------------------
    # Slides / gathers
    # ------------------------------------------------------------------
    def _permute(self, instr, vl, sew, lmul, mask_bits) -> int:
        mnem = instr.mnemonic
        dtype = fp_dtype(sew) if mnem.startswith("vf") else int_dtype(sew)
        vlmax = self.state.vtype.vlmax(self.state.vlen_bits)
        vd_idx = instr.op("vd").index

        if mnem in ("vslideup_vx", "vslideup_vi", "vslidedown_vx",
                    "vslidedown_vi"):
            if instr.spec.fmt == "slide_vx":
                offset = self.state.x.read_unsigned(instr.op("rs1").index)
            else:
                offset = int(instr.op("imm"))
            offset = min(offset, vlmax)
            if mnem.startswith("vslideup"):
                dest = self.state.v.read_elems(vd_idx, vl, dtype, lmul)
                vs2 = self.state.v.read_elems(
                    instr.op("vs2").index, vl, dtype, lmul)
                result = permute.slideup(vs2, dest, offset)
                write_mask = np.arange(vl) >= offset
                if mask_bits is not None:
                    write_mask &= mask_bits
                self.state.v.write_elems(vd_idx, result, lmul, write_mask)
            else:
                vs2_full = self.state.v.read_elems(
                    instr.op("vs2").index, vlmax, dtype, lmul)
                result = permute.slidedown(vs2_full, vl, offset)
                self._write(instr, result, lmul, mask_bits)
            return offset

        if mnem in ("vslide1up_vx", "vslide1down_vx",
                    "vfslide1up_vf", "vfslide1down_vf"):
            if instr.spec.fmt == "slide1_vx":
                raw = self.state.x.read(instr.op("rs1").index)
                scalar = self._splat_int(raw, int_dtype(sew), 1).view(dtype)[0]
            else:
                scalar = dtype.type(self.state.f.read(instr.op("frs1").index))
            vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
            if "up" in mnem:
                result = permute.slide1up(vs2, scalar, vl)
            else:
                result = permute.slide1down(vs2, scalar, vl)
            self._write(instr, result, lmul, mask_bits)
            return 1

        if mnem == "vrgather_vv":
            vs2_full = self.state.v.read_elems(
                instr.op("vs2").index, vlmax, dtype, lmul)
            indices = self.state.v.read_elems(
                instr.op("vs1").index, vl, int_dtype(sew), lmul)
            result = permute.rgather(vs2_full, indices, vlmax)
            self._write(instr, result, lmul, mask_bits)
            return 0

        if mnem == "vcompress_vm":
            select = self.state.v.read_mask(instr.op("vs1").index, vl)
            vs2 = self.state.v.read_elems(instr.op("vs2").index, vl, dtype, lmul)
            dest = self.state.v.read_elems(vd_idx, vl, dtype, lmul)
            result = permute.compress(vs2, select, dest)
            self.state.v.write_elems(vd_idx, result, lmul)
            return 0

        raise ExecutionError(f"unhandled permute {mnem}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Mask unit
    # ------------------------------------------------------------------
    def _masku(self, instr, vl, sew, lmul, mask_bits) -> None:
        mnem = instr.mnemonic
        if instr.spec.mask_logical:
            base = self._base(instr)
            a = self.state.v.read_mask(instr.op("vs2").index, vl)
            b = self.state.v.read_mask(instr.op("vs1").index, vl)
            self.state.v.write_mask(
                instr.op("vd").index, maskops.LOGICAL[base](a, b))
            return
        if mnem == "vcpop_m":
            bits = self.state.v.read_mask(instr.op("vs2").index, vl)
            if mask_bits is not None:
                bits = bits & mask_bits
            self.state.x.write(instr.op("rd").index, maskops.cpop(bits))
            return
        if mnem == "vfirst_m":
            bits = self.state.v.read_mask(instr.op("vs2").index, vl)
            if mask_bits is not None:
                bits = bits & mask_bits
            self.state.x.write(instr.op("rd").index, maskops.first(bits))
            return
        if mnem in maskops.M_UNARY:
            bits = self.state.v.read_mask(instr.op("vs2").index, vl)
            result = maskops.M_UNARY[mnem](bits)
            if mask_bits is not None:
                old = self.state.v.read_mask(instr.op("vd").index, vl)
                result = np.where(mask_bits, result, old)
            self.state.v.write_mask(instr.op("vd").index, result)
            return
        if mnem == "viota_m":
            bits = self.state.v.read_mask(instr.op("vs2").index, vl)
            if mask_bits is not None:
                bits = bits & mask_bits
            result = maskops.iota(bits).astype(int_dtype(sew))
            self._write(instr, result, lmul, mask_bits)
            return
        if mnem == "vid_v":
            result = np.arange(vl, dtype=np.int64).astype(int_dtype(sew))
            self._write(instr, result, lmul, mask_bits)
            return
        raise ExecutionError(f"unhandled mask op {mnem}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _mem(self, instr, vl, sew, lmul, mask_bits) -> MemAccess:
        spec = instr.spec
        pattern = spec.mem_pattern
        shape = memops.data_shape(instr.mnemonic, pattern, vl, sew, lmul)
        base = self.state.x.read_unsigned(instr.op("rs1").index)
        dtype = memops.unit_dtype(shape.ew_bytes)

        if pattern is MemPattern.MASK:
            if spec.is_load:
                raw = self.mem.read_bytes(base, shape.count)
                view = self.state.v._group_bytes(instr.op("vd").index, 1)
                view[:shape.count] = raw
            else:
                view = self.state.v._group_bytes(instr.op("vs3").index, 1)
                self.mem.write_bytes(base, view[:shape.count])
            return MemAccess(base, 1, shape.count, 1, pattern, spec.is_store)

        if pattern is MemPattern.UNIT:
            stride = shape.ew_bytes
            if spec.is_load:
                data = self.mem.read_array(base, vl, dtype)
                self.state.v.write_elems(
                    instr.op("vd").index, data, shape.emul, mask_bits)
            else:
                data = self.state.v.read_elems(
                    instr.op("vs3").index, vl, dtype, shape.emul)
                if mask_bits is None:
                    self.mem.write_array(base, data)
                else:
                    offsets = np.flatnonzero(mask_bits) * stride
                    self.mem.write_scatter(base, offsets, data[mask_bits])
            return MemAccess(base, stride, vl, shape.ew_bytes, pattern,
                             spec.is_store)

        if pattern is MemPattern.STRIDED:
            stride = self.state.x.read(instr.op("rs2").index)
            if spec.is_load:
                data = self.mem.read_strided(base, vl, stride, dtype)
                self.state.v.write_elems(
                    instr.op("vd").index, data, shape.emul, mask_bits)
            else:
                data = self.state.v.read_elems(
                    instr.op("vs3").index, vl, dtype, shape.emul)
                if mask_bits is None:
                    self.mem.write_strided(base, data, stride)
                else:
                    offsets = np.flatnonzero(mask_bits).astype(np.int64) * stride
                    self.mem.write_scatter(base, offsets, data[mask_bits])
            return MemAccess(base, stride, vl, shape.ew_bytes, pattern,
                             spec.is_store)

        # Indexed: mnemonic width is the index EEW; data uses SEW.
        index_eew = memops.eew_from_mnemonic(instr.mnemonic)
        index_emul = max(1, index_eew * lmul // sew)
        offsets = self.state.v.read_elems(
            instr.op("vs2").index, vl, memops.unit_dtype(index_eew // 8),
            index_emul).astype(np.int64)
        data_dtype = memops.unit_dtype(sew // 8)
        if spec.is_load:
            if mask_bits is None:
                data = self.mem.read_gather(base, offsets, data_dtype)
                self.state.v.write_elems(
                    instr.op("vd").index, data, lmul, None)
            else:
                dest = self.state.v.read_elems(
                    instr.op("vd").index, vl, data_dtype, lmul)
                active = self.mem.read_gather(
                    base, offsets[mask_bits], data_dtype)
                dest[mask_bits] = active
                self.state.v.write_elems(instr.op("vd").index, dest, lmul)
        else:
            data = self.state.v.read_elems(
                instr.op("vs3").index, vl, data_dtype, lmul)
            if mask_bits is not None:
                offsets = offsets[mask_bits]
                data = data[mask_bits]
            self.mem.write_scatter(base, offsets, data)
        return MemAccess(base, 0, vl, sew // 8, pattern, spec.is_store)

    # ------------------------------------------------------------------
    def _write(self, instr: Instruction, values: np.ndarray, emul: int,
               mask_bits) -> None:
        """Write the destination body with the mask-undisturbed policy."""
        vd = instr.get("vd")
        if vd is None:
            raise IllegalInstructionError(f"{instr.mnemonic} has no vd")
        self.state.v.write_elems(vd.index, values, emul, mask_bits)
