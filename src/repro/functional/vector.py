"""The functional vector engine: RVV state handling + dispatch.

Fetches operands from the VRF, applies the pure semantics from
:mod:`repro.functional.vector_ops`, handles masking (mask-undisturbed) and
tail policy (tail-undisturbed, legal under agnosticism), and emits one
:class:`~repro.functional.trace.VectorEvent` per retired instruction.

Hot-path notes (this module runs once per retired vector instruction):

* dispatch, operand indices and semantic callables come pre-resolved from
  the instruction's :class:`~repro.functional.plan.InstrPlan` — no string
  splitting or operand-dict lookups here;
* VRF reads feeding pure computations use ``copy=False`` views (every
  semantic function allocates a fresh result before anything is written
  back, and register groups of equal EMUL are equal-or-disjoint);
* the ``v0`` mask is unpacked once and cached until ``v0`` is written
  (tracked by ``VectorRegFile.v0_writes``) or ``vl`` changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ExecutionError
from ..isa.instructions import Instruction, MemPattern
from .memory import FunctionalMemory
from .plan import (InstrPlan, OP1_F, OP1_I, OP1_V, OP1_X, plan_for_instr)
from .state import ArchState, fp_dtype, int_dtype
from .trace import MemAccess, VectorEvent
from .vector_ops import mask as maskops, mem as memops, permute


#: Handler return value for instructions with no memory access / slide.
_NO_EXTRA = (None, 0)

_UNIT_DTYPES = {1: np.dtype("u1"), 2: np.dtype("u2"),
                4: np.dtype("u4"), 8: np.dtype("u8")}


class VectorUnit:
    """Executes one vector instruction against the architectural state."""

    #: vkind -> handler method name; bound into a dict per instance.
    _HANDLERS = {
        "mem": "_h_mem",
        "red": "_h_reduction",
        "slide_updn": "_h_slide_updn",
        "slide1": "_h_slide1",
        "rgather": "_h_rgather",
        "compress": "_h_compress",
        "mask_log": "_h_mask_log",
        "mask_scalar": "_h_mask_scalar",
        "m_unary": "_h_m_unary",
        "iota": "_h_iota",
        "vid": "_h_vid",
        "cmp": "_h_compare",
        "mv_vv": "_h_mv_vv",
        "splat": "_h_splat",
        "mv_sx": "_h_mv_sx",
        "mv_xs": "_h_mv_xs",
        "fmv_sf": "_h_fmv_sf",
        "fmv_fs": "_h_fmv_fs",
        "merge": "_h_merge",
        "fp_unary": "_h_fp_unary",
        "fp_cvt": "_h_fp_cvt",
        "fp_fma": "_h_fp_fma",
        "fp_fma_w": "_h_fp_fma_w",
        "fp_widen": "_h_fp_widen",
        "fp_bin": "_h_fp_bin",
        "int_fma": "_h_int_fma",
        "int_widen": "_h_int_widen",
        "int_narrow": "_h_int_narrow",
        "int_bin": "_h_int_bin",
    }

    def __init__(self, state: ArchState, mem: FunctionalMemory) -> None:
        self.state = state
        self.mem = mem
        self._dispatch = {k: getattr(self, name)
                          for k, name in self._HANDLERS.items()}
        self._v0_key = -1
        self._v0_vl = -1
        self._v0_bits: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, instr: Instruction) -> VectorEvent:
        """Decode-on-the-fly single-instruction path (tests, tools)."""
        return self.execute_plan(plan_for_instr(instr))

    def execute_plan(self, p: InstrPlan) -> VectorEvent:
        state = self.state
        state.require_legal_vtype()
        vl = state.vl
        sew = state.sew_bits
        lmul = state.lmul_i
        mask_bits = self._v0_mask(vl) if p.masked else None
        mem_access, slide_amount = self._dispatch[p.vkind](
            p, vl, sew, lmul, mask_bits)
        return VectorEvent(p.instr, vl, sew, lmul, mem_access, slide_amount)

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------
    def _v0_mask(self, vl: int) -> np.ndarray:
        """Boolean view of v0's first ``vl`` mask bits, cached until v0
        is written or ``vl`` changes.  Consumers must not mutate it."""
        vfile = self.state.v
        key = vfile.v0_writes
        if self._v0_key == key and self._v0_vl == vl:
            return self._v0_bits
        bits = vfile.read_mask(0, vl)
        self._v0_key = key
        self._v0_vl = vl
        self._v0_bits = bits
        return bits

    def _fetch_op1(self, p: InstrPlan, vl: int, dtype: np.dtype):
        """vs1 / rs1 / imm / frs1 operand resolved to an array or scalar."""
        mode = p.op1_mode
        if mode == OP1_V:
            return self.state.v.read_elems(
                p.vs1, vl, dtype, self.state.lmul_i, copy=False)
        if mode == OP1_X:
            return self._splat_int(self.state.x.read(p.rs1), dtype, vl)
        if mode == OP1_I:
            return self._splat_int(p.imm, dtype, vl)
        if mode == OP1_F:
            # NumPy scalar of the operand dtype: broadcasting against the
            # vs2 array computes the same elementwise results as the old
            # np.full splat without materializing vl copies.
            return dtype.type(self.state.f.read(p.frs1))
        raise ExecutionError(f"cannot fetch op1 for format {p.spec.fmt}")

    @staticmethod
    def _splat_int(value: int, dtype: np.dtype, vl: int) -> np.ndarray:
        bits = dtype.itemsize * 8
        value &= (1 << bits) - 1
        return np.full(vl, value, dtype=_UNIT_DTYPES[dtype.itemsize]) \
            .view(dtype)

    # ------------------------------------------------------------------
    # Moves / splats / merges
    # ------------------------------------------------------------------
    def _h_mv_vv(self, p, vl, sew, lmul, mask_bits):
        src = self.state.v.read_elems(
            p.vs2, vl, int_dtype(sew), lmul, copy=False)
        self.state.v.write_elems(p.vd, src, lmul, mask_bits)
        return _NO_EXTRA

    def _h_splat(self, p, vl, sew, lmul, mask_bits):
        m = p.mnemonic
        if m == "vfmv_v_f":
            value = np.full(vl, self.state.f.read(p.frs1),
                            dtype=fp_dtype(sew))
        elif m == "vmv_v_x":
            value = self._splat_int(self.state.x.read(p.rs1),
                                    int_dtype(sew), vl)
        else:  # vmv_v_i
            value = self._splat_int(p.imm, int_dtype(sew), vl)
        self.state.v.write_elems(p.vd, value, lmul, mask_bits)
        return _NO_EXTRA

    def _h_mv_sx(self, p, vl, sew, lmul, mask_bits):
        self.state.v.write_elems(
            p.vd,
            self._splat_int(self.state.x.read(p.rs1), int_dtype(sew), 1),
            emul=1)
        return _NO_EXTRA

    def _h_mv_xs(self, p, vl, sew, lmul, mask_bits):
        value = self.state.v.read_elems(
            p.vs2, 1, int_dtype(sew, signed=True), 1, copy=False)[0]
        self.state.x.write(p.rd, int(value))
        return _NO_EXTRA

    def _h_fmv_sf(self, p, vl, sew, lmul, mask_bits):
        self.state.v.write_elems(
            p.vd,
            np.array([self.state.f.read(p.frs1)], dtype=fp_dtype(sew)),
            emul=1)
        return _NO_EXTRA

    def _h_fmv_fs(self, p, vl, sew, lmul, mask_bits):
        value = self.state.v.read_elems(
            p.vs2, 1, fp_dtype(sew), 1, copy=False)[0]
        self.state.f.write(p.frd, float(value))
        return _NO_EXTRA

    def _h_merge(self, p, vl, sew, lmul, mask_bits):
        # Merges read v0 as selector regardless of `masked`.
        selector = self._v0_mask(vl)
        dtype = fp_dtype(sew) if p.aux else int_dtype(sew)
        vs2 = self.state.v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        op1 = self._fetch_op1(p, vl, dtype)
        result = np.where(selector, op1, vs2).astype(dtype)
        self.state.v.write_elems(p.vd, result, lmul, None)
        return _NO_EXTRA

    # ------------------------------------------------------------------
    # Integer element-wise
    # ------------------------------------------------------------------
    def _h_int_fma(self, p, vl, sew, lmul, mask_bits):
        dtype = int_dtype(sew)
        v = self.state.v
        vd = v.read_elems(p.vd, vl, dtype, lmul, copy=False)
        op1 = self._fetch_op1(p, vl, dtype)
        vs2 = v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        with np.errstate(over="ignore"):
            result = p.aux(vd, op1, vs2).astype(dtype)
        v.write_elems(p.vd, result, lmul, mask_bits)
        return _NO_EXTRA

    def _h_int_widen(self, p, vl, sew, lmul, mask_bits):
        narrow = int_dtype(sew, signed=True)
        wide = int_dtype(2 * sew, signed=True)
        vs2 = self.state.v.read_elems(
            p.vs2, vl, narrow, lmul, copy=False).astype(wide)
        op1 = self._fetch_op1(p, vl, narrow).astype(wide)
        result = p.aux(vs2, op1).astype(wide)
        self.state.v.write_elems(p.vd, result, 2 * lmul, mask_bits)
        return _NO_EXTRA

    def _h_int_narrow(self, p, vl, sew, lmul, mask_bits):  # vnsrl
        wide_u = int_dtype(2 * sew)
        vs2 = self.state.v.read_elems(
            p.vs2, vl, wide_u, 2 * lmul, copy=False)
        op1 = self._fetch_op1(p, vl, wide_u)
        shift = (op1.astype(np.uint64) & np.uint64(2 * sew - 1)) \
            .astype(wide_u)
        result = np.right_shift(vs2, shift).astype(int_dtype(sew))
        self.state.v.write_elems(p.vd, result, lmul, mask_bits)
        return _NO_EXTRA

    def _h_int_bin(self, p, vl, sew, lmul, mask_bits):
        op = p.aux
        dtype = int_dtype(sew, signed=op.signed)
        vs2 = self.state.v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        op1 = self._fetch_op1(p, vl, dtype)
        with np.errstate(over="ignore"):
            result = op.func(vs2, op1).astype(dtype)
        self.state.v.write_elems(p.vd, result, lmul, mask_bits)
        return _NO_EXTRA

    # ------------------------------------------------------------------
    # Floating-point element-wise
    # ------------------------------------------------------------------
    def _h_fp_unary(self, p, vl, sew, lmul, mask_bits):
        vs2 = self.state.v.read_elems(
            p.vs2, vl, fp_dtype(sew), lmul, copy=False)
        self.state.v.write_elems(p.vd, p.aux(vs2), lmul, mask_bits)
        return _NO_EXTRA

    def _h_fp_fma(self, p, vl, sew, lmul, mask_bits):
        dtype = fp_dtype(sew)
        v = self.state.v
        vd = v.read_elems(p.vd, vl, dtype, lmul, copy=False)
        op1 = self._fetch_op1(p, vl, dtype)
        vs2 = v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        v.write_elems(p.vd, p.aux(vd, op1, vs2), lmul, mask_bits)
        return _NO_EXTRA

    def _h_fp_fma_w(self, p, vl, sew, lmul, mask_bits):  # vfwmacc
        wide = fp_dtype(2 * sew)
        v = self.state.v
        vd = v.read_elems(p.vd, vl, wide, 2 * lmul, copy=False)
        op1 = np.asarray(self._fetch_op1(p, vl, fp_dtype(sew)), dtype=wide)
        vs2 = v.read_elems(
            p.vs2, vl, fp_dtype(sew), lmul, copy=False).astype(wide)
        result = p.aux(vd, op1, vs2)
        v.write_elems(p.vd, result, 2 * lmul, mask_bits)
        return _NO_EXTRA

    def _h_fp_widen(self, p, vl, sew, lmul, mask_bits):  # vfwadd/vfwmul
        wide = fp_dtype(2 * sew)
        vs2 = self.state.v.read_elems(
            p.vs2, vl, fp_dtype(sew), lmul, copy=False).astype(wide)
        op1 = np.asarray(self._fetch_op1(p, vl, fp_dtype(sew)), dtype=wide)
        result = p.aux(vs2, op1)
        self.state.v.write_elems(p.vd, result, 2 * lmul, mask_bits)
        return _NO_EXTRA

    def _h_fp_bin(self, p, vl, sew, lmul, mask_bits):
        dtype = fp_dtype(sew)
        vs2 = self.state.v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        op1 = self._fetch_op1(p, vl, dtype)
        result = np.asarray(p.aux(vs2, op1), dtype=dtype)
        self.state.v.write_elems(p.vd, result, lmul, mask_bits)
        return _NO_EXTRA

    def _h_fp_cvt(self, p, vl, sew, lmul, mask_bits):
        mnem = p.mnemonic
        v = self.state.v
        if mnem == "vfcvt_x_f_v":
            vs2 = v.read_elems(p.vs2, vl, fp_dtype(sew), lmul, copy=False)
            result = np.rint(vs2).astype(int_dtype(sew, signed=True))
            v.write_elems(p.vd, result, lmul, mask_bits)
        elif mnem == "vfcvt_rtz_x_f_v":
            vs2 = v.read_elems(p.vs2, vl, fp_dtype(sew), lmul, copy=False)
            result = np.trunc(vs2).astype(int_dtype(sew, signed=True))
            v.write_elems(p.vd, result, lmul, mask_bits)
        elif mnem == "vfcvt_f_x_v":
            vs2 = v.read_elems(
                p.vs2, vl, int_dtype(sew, signed=True), lmul, copy=False)
            v.write_elems(p.vd, vs2.astype(fp_dtype(sew)), lmul, mask_bits)
        elif mnem == "vfwcvt_f_f_v":
            vs2 = v.read_elems(p.vs2, vl, fp_dtype(sew), lmul, copy=False)
            v.write_elems(p.vd, vs2.astype(fp_dtype(2 * sew)), 2 * lmul,
                          mask_bits)
        elif mnem == "vfncvt_f_f_w":
            vs2 = v.read_elems(
                p.vs2, vl, fp_dtype(2 * sew), 2 * lmul, copy=False)
            v.write_elems(p.vd, vs2.astype(fp_dtype(sew)), lmul, mask_bits)
        else:  # pragma: no cover
            raise ExecutionError(f"unhandled conversion {mnem}")
        return _NO_EXTRA

    # ------------------------------------------------------------------
    # Compares -> mask destination
    # ------------------------------------------------------------------
    def _h_compare(self, p, vl, sew, lmul, mask_bits):
        is_fp, func, signed = p.aux
        dtype = fp_dtype(sew) if is_fp else int_dtype(sew, signed=signed)
        vs2 = self.state.v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        op1 = self._fetch_op1(p, vl, dtype)
        bits = np.asarray(func(vs2, op1), dtype=bool)
        if mask_bits is not None:
            old = self.state.v.read_mask(p.vd, vl)
            bits = np.where(mask_bits, bits, old)
        self.state.v.write_mask(p.vd, bits)
        return _NO_EXTRA

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _h_reduction(self, p, vl, sew, lmul, mask_bits):
        fn, is_fp, signed = p.aux
        dtype = fp_dtype(sew) if is_fp else int_dtype(sew, signed=signed)
        values = self.state.v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        if mask_bits is not None:
            values = values[mask_bits]
        seed = self.state.v.read_elems(p.vs1, 1, dtype, 1, copy=False)[0]
        result = fn(values, seed)
        self.state.v.write_elems(
            p.vd, np.array([result], dtype=dtype), emul=1)
        return _NO_EXTRA

    # ------------------------------------------------------------------
    # Slides / gathers
    # ------------------------------------------------------------------
    def _h_slide_updn(self, p, vl, sew, lmul, mask_bits):
        is_up, from_reg = p.aux
        dtype = int_dtype(sew)
        offset = (self.state.x.read_unsigned(p.rs1) if from_reg else p.imm)
        vlmax = self.state.vlen_bits * lmul // sew
        offset = min(offset, vlmax)
        v = self.state.v
        if is_up:
            dest = v.read_elems(p.vd, vl, dtype, lmul, copy=False)
            vs2 = v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
            result = permute.slideup(vs2, dest, offset)
            write_mask = np.arange(vl) >= offset
            if mask_bits is not None:
                write_mask &= mask_bits
            v.write_elems(p.vd, result, lmul, write_mask)
        else:
            vs2_full = v.read_elems(p.vs2, vlmax, dtype, lmul, copy=False)
            result = permute.slidedown(vs2_full, vl, offset)
            v.write_elems(p.vd, result, lmul, mask_bits)
        return None, offset

    def _h_slide1(self, p, vl, sew, lmul, mask_bits):
        is_up, from_f = p.aux
        dtype = fp_dtype(sew) if from_f else int_dtype(sew)
        if from_f:
            scalar = dtype.type(self.state.f.read(p.frs1))
        else:
            raw = self.state.x.read(p.rs1)
            scalar = self._splat_int(raw, int_dtype(sew), 1).view(dtype)[0]
        vs2 = self.state.v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        if is_up:
            result = permute.slide1up(vs2, scalar, vl)
        else:
            result = permute.slide1down(vs2, scalar, vl)
        self.state.v.write_elems(p.vd, result, lmul, mask_bits)
        return None, 1

    def _h_rgather(self, p, vl, sew, lmul, mask_bits):
        dtype = int_dtype(sew)
        vlmax = self.state.vlen_bits * lmul // sew
        v = self.state.v
        vs2_full = v.read_elems(p.vs2, vlmax, dtype, lmul, copy=False)
        indices = v.read_elems(p.vs1, vl, dtype, lmul, copy=False)
        result = permute.rgather(vs2_full, indices, vlmax)
        v.write_elems(p.vd, result, lmul, mask_bits)
        return None, 0

    def _h_compress(self, p, vl, sew, lmul, mask_bits):
        dtype = int_dtype(sew)
        v = self.state.v
        select = v.read_mask(p.vs1, vl)
        vs2 = v.read_elems(p.vs2, vl, dtype, lmul, copy=False)
        dest = v.read_elems(p.vd, vl, dtype, lmul, copy=False)
        result = permute.compress(vs2, select, dest)
        v.write_elems(p.vd, result, lmul)
        return None, 0

    # ------------------------------------------------------------------
    # Mask unit
    # ------------------------------------------------------------------
    def _h_mask_log(self, p, vl, sew, lmul, mask_bits):
        v = self.state.v
        a = v.read_mask(p.vs2, vl)
        b = v.read_mask(p.vs1, vl)
        v.write_mask(p.vd, p.aux(a, b))
        return _NO_EXTRA

    def _h_mask_scalar(self, p, vl, sew, lmul, mask_bits):  # vcpop/vfirst
        bits = self.state.v.read_mask(p.vs2, vl)
        if mask_bits is not None:
            bits = bits & mask_bits
        self.state.x.write(p.rd, p.aux(bits))
        return _NO_EXTRA

    def _h_m_unary(self, p, vl, sew, lmul, mask_bits):
        v = self.state.v
        bits = v.read_mask(p.vs2, vl)
        result = p.aux(bits)
        if mask_bits is not None:
            old = v.read_mask(p.vd, vl)
            result = np.where(mask_bits, result, old)
        v.write_mask(p.vd, result)
        return _NO_EXTRA

    def _h_iota(self, p, vl, sew, lmul, mask_bits):
        bits = self.state.v.read_mask(p.vs2, vl)
        if mask_bits is not None:
            bits = bits & mask_bits
        result = maskops.iota(bits).astype(int_dtype(sew))
        self.state.v.write_elems(p.vd, result, lmul, mask_bits)
        return _NO_EXTRA

    def _h_vid(self, p, vl, sew, lmul, mask_bits):
        result = np.arange(vl, dtype=np.int64).astype(int_dtype(sew))
        self.state.v.write_elems(p.vd, result, lmul, mask_bits)
        return _NO_EXTRA

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _h_mem(self, p, vl, sew, lmul, mask_bits):
        spec = p.spec
        pattern = spec.mem_pattern
        shape = memops.data_shape(p.mnemonic, pattern, vl, sew, lmul)
        base = self.state.x.read_unsigned(p.rs1)
        dtype = _UNIT_DTYPES[shape.ew_bytes]
        vfile = self.state.v

        if pattern is MemPattern.MASK:
            if spec.is_load:
                raw = self.mem.read_bytes(base, shape.count)
                view = vfile._group_bytes(p.vd, 1)
                if p.vd == 0:
                    vfile.v0_writes += 1
                view[:shape.count] = raw
            else:
                view = vfile._group_bytes(p.vs3, 1)
                self.mem.write_bytes(base, view[:shape.count])
            return (MemAccess(base, 1, shape.count, 1, pattern,
                              spec.is_store), 0)

        if pattern is MemPattern.UNIT:
            stride = shape.ew_bytes
            if spec.is_load:
                data = self.mem.read_array(base, vl, dtype)
                vfile.write_elems(p.vd, data, shape.emul, mask_bits)
            else:
                data = vfile.read_elems(p.vs3, vl, dtype, shape.emul,
                                        copy=False)
                if mask_bits is None:
                    self.mem.write_array(base, data)
                else:
                    offsets = np.flatnonzero(mask_bits) * stride
                    self.mem.write_scatter(base, offsets, data[mask_bits])
            return (MemAccess(base, stride, vl, shape.ew_bytes, pattern,
                              spec.is_store), 0)

        if pattern is MemPattern.STRIDED:
            stride = self.state.x.read(p.rs2)
            if spec.is_load:
                data = self.mem.read_strided(base, vl, stride, dtype)
                vfile.write_elems(p.vd, data, shape.emul, mask_bits)
            else:
                data = vfile.read_elems(p.vs3, vl, dtype, shape.emul,
                                        copy=False)
                if mask_bits is None:
                    self.mem.write_strided(base, data, stride)
                else:
                    offsets = np.flatnonzero(mask_bits).astype(np.int64) \
                        * stride
                    self.mem.write_scatter(base, offsets, data[mask_bits])
            return (MemAccess(base, stride, vl, shape.ew_bytes, pattern,
                              spec.is_store), 0)

        # Indexed: mnemonic width is the index EEW; data uses SEW.
        index_eew = p.aux
        index_emul = max(1, index_eew * lmul // sew)
        offsets = vfile.read_elems(
            p.vs2, vl, _UNIT_DTYPES[index_eew // 8], index_emul,
            copy=False).astype(np.int64)
        data_dtype = _UNIT_DTYPES[sew // 8]
        if spec.is_load:
            if mask_bits is None:
                data = self.mem.read_gather(base, offsets, data_dtype)
                vfile.write_elems(p.vd, data, lmul, None)
            else:
                dest = vfile.read_elems(p.vd, vl, data_dtype, lmul)
                active = self.mem.read_gather(
                    base, offsets[mask_bits], data_dtype)
                dest[mask_bits] = active
                vfile.write_elems(p.vd, dest, lmul)
        else:
            data = vfile.read_elems(p.vs3, vl, data_dtype, lmul, copy=False)
            if mask_bits is not None:
                offsets = offsets[mask_bits]
                data = data[mask_bits]
            self.mem.write_scatter(base, offsets, data)
        return (MemAccess(base, 0, vl, sew // 8, pattern, spec.is_store), 0)
