"""Exact functional simulation of the scalar IR + RVV subset.

This package is the "QuestaSim functional" half of the reproduction: it
executes programs element-exactly over NumPy-backed architectural state and
produces a dynamic trace that the timing engine (:mod:`repro.timing`)
replays to obtain cycle counts.
"""

from .state import ArchState, VectorRegFile
from .memory import FunctionalMemory
from .executor import Executor, ExecResult
from .trace import (DynamicTrace, ScalarEvent, VectorEvent, VsetvlEvent,
                    MemAccess)

__all__ = [
    "ArchState",
    "VectorRegFile",
    "FunctionalMemory",
    "Executor",
    "ExecResult",
    "DynamicTrace",
    "ScalarEvent",
    "VectorEvent",
    "VsetvlEvent",
    "MemAccess",
]
