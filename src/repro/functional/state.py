"""Architectural state: scalar register files, VRF, vector CSRs.

The vector register file is stored exactly as the ISA sees it: a flat byte
array of 32 registers of VLEN bits each.  Register groups (LMUL > 1) are
contiguous because RVV requires group bases to be LMUL-aligned, so typed
views over groups are zero-copy NumPy views.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError, IllegalInstructionError
from ..isa.vtype import VType

_I64_MASK = (1 << 64) - 1

# Cached np.dtype singletons: the interpreter resolves a dtype per retired
# instruction, so these lookups must not construct a fresh np.dtype object
# each time (np.dtype(...) is measurably slower than a dict hit).
_SEW_DTYPES = {
    (8, False): np.dtype(np.uint8), (8, True): np.dtype(np.int8),
    (16, False): np.dtype(np.uint16), (16, True): np.dtype(np.int16),
    (32, False): np.dtype(np.uint32), (32, True): np.dtype(np.int32),
    (64, False): np.dtype(np.uint64), (64, True): np.dtype(np.int64),
}
_FP_DTYPES = {32: np.dtype(np.float32), 64: np.dtype(np.float64)}


def int_dtype(sew: int, signed: bool = False) -> np.dtype:
    """NumPy integer dtype for one SEW (raises on unsupported widths)."""
    try:
        return _SEW_DTYPES[(sew, signed)]
    except KeyError:
        raise IllegalInstructionError(f"no integer dtype for SEW={sew}") from None


def fp_dtype(sew: int) -> np.dtype:
    """NumPy float dtype for one SEW (FP supports 32/64 only)."""
    try:
        return _FP_DTYPES[sew]
    except KeyError:
        raise IllegalInstructionError(
            f"FP operations require SEW 32 or 64, got {sew}"
        ) from None


class ScalarRegs:
    """Integer register file; x0 reads as zero and ignores writes."""

    def __init__(self) -> None:
        self._regs = [0] * 32

    def read(self, index: int) -> int:
        return 0 if index == 0 else self._regs[index]

    def write(self, index: int, value: int) -> None:
        if index:
            value &= _I64_MASK
            if value >= 1 << 63:
                value -= 1 << 64
            self._regs[index] = value

    def read_unsigned(self, index: int) -> int:
        return self.read(index) & _I64_MASK

    def snapshot(self) -> list[int]:
        return list(self._regs)


class FpRegs:
    """Floating-point register file holding float64 values.

    Backed by a plain Python list: the interpreter reads f-registers on
    every scalar-operand vector instruction, and list indexing is much
    cheaper than NumPy scalar extraction.
    """

    def __init__(self) -> None:
        self._regs = [0.0] * 32

    def read(self, index: int) -> float:
        return self._regs[index]

    def write(self, index: int, value: float) -> None:
        self._regs[index] = float(value)

    def snapshot(self) -> np.ndarray:
        return np.array(self._regs, dtype=np.float64)


class VectorRegFile:
    """32 vector registers of ``vlen_bits`` each, byte-backed."""

    def __init__(self, vlen_bits: int) -> None:
        if vlen_bits % 64:
            raise ExecutionError("VLEN must be a multiple of 64 bits")
        self.vlen_bits = vlen_bits
        self.vlen_bytes = vlen_bits // 8
        self._data = np.zeros(32 * self.vlen_bytes, dtype=np.uint8)
        #: Bumped on every write that can touch v0; consumers (the vector
        #: unit's mask cache) key cached v0-derived data on this counter.
        #: Any register group containing v0 must start at v0 (groups are
        #: EMUL-aligned), so checking ``base == 0`` is sufficient.
        self.v0_writes = 0
        #: Typed zero-copy views of register groups, keyed by
        #: (base, emul, dtype).  The backing buffer never moves, so views
        #: stay valid for the life of the register file; legality checks
        #: run once per distinct key in :meth:`_group_bytes`.
        self._view_cache: dict = {}

    def _group_bytes(self, base: int, emul: int) -> np.ndarray:
        """Byte view of an EMUL-register group (zero-copy)."""
        if not 0 <= base < 32:
            raise IllegalInstructionError(f"v{base} out of range")
        emul = max(1, emul)
        if base % emul:
            raise IllegalInstructionError(
                f"v{base} not aligned to EMUL={emul} register group"
            )
        if base + emul > 32:
            raise IllegalInstructionError(
                f"group v{base}..v{base + emul - 1} exceeds the register file"
            )
        start = base * self.vlen_bytes
        return self._data[start:start + emul * self.vlen_bytes]

    def __getstate__(self):
        # Views alias _data only within one process; pickling them would
        # rehydrate detached copies that silently miss register updates.
        state = self.__dict__.copy()
        state["_view_cache"] = {}
        return state

    def _typed_view(self, base: int, emul: int, dtype: np.dtype) -> np.ndarray:
        """Cached zero-copy ``dtype`` view of an EMUL-register group."""
        key = (base, emul, dtype)
        view = self._view_cache.get(key)
        if view is None:
            view = self._group_bytes(base, emul).view(dtype)
            self._view_cache[key] = view
        return view

    def read_elems(self, base: int, vl: int, dtype: np.dtype,
                   emul: int = 1, copy: bool = True) -> np.ndarray:
        """First ``vl`` elements of a register group.

        By default returns a defensive copy.  Pass ``copy=False`` for
        read-only consumers (the interpreter's arithmetic paths, which
        always allocate a fresh result before writing back): the returned
        array is then a zero-copy view of the register file and must not
        be mutated or held across a register write.
        """
        view = self._typed_view(base, max(1, emul), np.dtype(dtype))
        if vl > view.size:
            raise IllegalInstructionError(
                f"vl={vl} exceeds group capacity {view.size} for v{base}"
            )
        return view[:vl].copy() if copy else view[:vl]

    def write_elems(self, base: int, values: np.ndarray, emul: int = 1,
                    mask: np.ndarray | None = None) -> None:
        """Write elements 0..len(values); tail elements are undisturbed.

        ``mask`` (bool per element) implements mask-undisturbed policy:
        inactive destination elements keep their previous value.
        """
        values = np.ascontiguousarray(values)
        view = self._typed_view(base, max(1, emul), values.dtype)
        if values.size > view.size:
            raise IllegalInstructionError(
                f"writing {values.size} elements into group capacity {view.size}"
            )
        if base == 0:
            self.v0_writes += 1
        if mask is None:
            view[:values.size] = values
        else:
            np.copyto(view[:values.size], values, where=mask)

    # ------------------------------------------------------------------
    # Mask register layout: bit i of v0 (RVV 1.0 mask layout)
    # ------------------------------------------------------------------
    def read_mask(self, reg: int, vl: int) -> np.ndarray:
        """Mask bits 0..vl-1 of ``reg`` as a boolean array."""
        nbytes = (vl + 7) // 8
        raw = self._group_bytes(reg, 1)[:nbytes]
        return np.unpackbits(raw, bitorder="little")[:vl].astype(bool)

    def write_mask(self, reg: int, bits: np.ndarray) -> None:
        """Write mask bits 0..len(bits)-1; tail bits undisturbed."""
        if reg == 0:
            self.v0_writes += 1
        bits = np.asarray(bits, dtype=bool)
        vl = bits.size
        nbytes = (vl + 7) // 8
        view = self._group_bytes(reg, 1)
        packed = np.packbits(bits, bitorder="little")
        if vl % 8:
            # Merge the partial last byte with existing tail bits.
            keep = view[nbytes - 1] & np.uint8((0xFF << (vl % 8)) & 0xFF)
            packed[-1] |= keep
        view[:nbytes] = packed

    def raw_register(self, reg: int) -> np.ndarray:
        """Whole-register byte copy (for tests and reshuffle modelling)."""
        return self._group_bytes(reg, 1).copy()

    def write_raw(self, reg: int, data: np.ndarray) -> None:
        if reg == 0:
            self.v0_writes += 1
        view = self._group_bytes(reg, 1)
        data = np.asarray(data, dtype=np.uint8)
        if data.size != view.size:
            raise ExecutionError("raw write must cover the whole register")
        view[:] = data


class ArchState:
    """Complete architectural state of the scalar core + vector unit."""

    def __init__(self, vlen_bits: int) -> None:
        self.x = ScalarRegs()
        self.f = FpRegs()
        self.v = VectorRegFile(vlen_bits)
        #: Integer mirrors of the current vtype's SEW/LMUL, refreshed by
        #: the ``vtype`` setter so the per-instruction hot path never
        #: converts the IntEnum fields.
        self.sew_bits = 64
        self.lmul_i = 1
        self.vtype = VType(vill=True)  # reset state: vill set, vl = 0
        self.vl = 0
        self.pc = 0

    @property
    def vtype(self) -> VType:
        return self._vtype

    @vtype.setter
    def vtype(self, value: VType) -> None:
        self._vtype = value
        if not value.vill:
            self.sew_bits = int(value.sew)
            self.lmul_i = int(value.lmul)

    @property
    def vlen_bits(self) -> int:
        return self.v.vlen_bits

    def require_legal_vtype(self) -> VType:
        if self._vtype.vill:
            raise IllegalInstructionError(
                "vector instruction executed with vill set (no vsetvli yet?)"
            )
        return self._vtype
