"""Columnar (struct-of-arrays) trace packing: the v6 envelope payload.

A captured :class:`~repro.functional.trace.DynamicTrace` is a list of
small Python objects — perfect for capture, terrible for a disk tier:
pickling builds (and unpickling rebuilds) one heap object per retired
instruction, which dominates warm-path latency once traces reach 10^5
events.  This module flattens the event stream into per-kind numpy
columns ("struct of arrays"):

* a ``tags`` byte per event (scalar / vsetvl / vector / fallback) keeps
  the original interleaving, so the stream order — which the timing
  engine replays sequentially — survives exactly;
* per-kind columns (opcode ids, operand program indices, ``vl`` /
  ``sew`` / ``lmul``, memory base/stride/count, element widths) hold the
  payload as raw little-endian array bytes;
* a small pickled header maps each column name to its ``(dtype, offset,
  count)`` slice of the blob, so readers materialize views with
  :func:`numpy.frombuffer` — zero-copy over the envelope's decompressed
  payload bytes;
* the rare event that does not flatten (an unknown subclass, an
  out-of-range field, an instruction that is not part of the program)
  is pickled whole into a ``fallback`` map keyed by event index; its
  tag marks the position, so mixed traces round-trip losslessly.

Vector events reference their :class:`~repro.isa.instructions
.Instruction` by *index into the program's instruction tuple* — the
program ships alongside the blob in the envelope payload, so unpacking
re-links events to the very instruction objects the replay decode
caches key on.

:class:`PackedTrace` is the lazy reader: aggregate counters and column
views are available without materializing a single event object, and
:meth:`PackedTrace.events` rebuilds the plain event list on first use
for consumers that genuinely need objects (``iter()``, golden checks).
The timing engine's vectorized replay path
(:mod:`repro.timing.replay_plan`) consumes either form.
"""

from __future__ import annotations

import pickle
import struct
from typing import Iterator

import numpy as np

from ..isa.instructions import MemPattern
from ..isa.program import Program
from .trace import (DynamicTrace, MemAccess, ScalarEvent, VectorEvent,
                    VsetvlEvent)

__all__ = ["PACK_VERSION", "PackedTrace", "pack_trace", "unpack_trace"]

#: Version of the column layout inside the blob (independent of the
#: envelope's ``DISK_FORMAT_VERSION``, which gates the file as a whole).
PACK_VERSION = 1

#: Leading magic of every packed-trace blob.
MAGIC = b"RVT6"

#: Event tags (one byte per event, preserving stream order).
TAG_SCALAR, TAG_VSETVL, TAG_VECTOR, TAG_FALLBACK = 0, 1, 2, 3

#: Fixed pattern vocabulary: index in this tuple is the on-disk code.
_PATTERNS = (MemPattern.NONE, MemPattern.UNIT, MemPattern.STRIDED,
             MemPattern.INDEXED, MemPattern.MASK)
_PATTERN_CODE = {p: i for i, p in enumerate(_PATTERNS)}

#: Column table: ``(name, dtype, count group, delta-coded)``.  The
#: count group keys how many rows a column has — ``t``: one per event,
#: ``s``: one per packed scalar, ``w``: one per packed vsetvl, ``v``:
#: one per packed vector event (memory rows are zero for events
#: without a MemAccess; ``v_flags`` bit 0 says whether one is present,
#: bit 1 whether it is a store).  Because dtypes and order are static,
#: the blob header only carries the four group counts; offsets are
#: recomputed by :func:`_layout` on both sides.  Wide integer columns
#: are *delta-coded* (first value kept, successive differences after
#: it, exact under two's-complement wraparound): traces are dominated
#: by near-constant or striding sequences — ``vl``, strides, unit-
#: stride addresses — which become zero/constant runs the envelope's
#: zlib pass collapses.
_COLUMNS = (
    ("tags", "u1", "t", False),
    ("s_kind", "u2", "s", False),
    ("s_addr", "i8", "s", True),
    ("s_nbytes", "i8", "s", True),
    ("w_vl", "i8", "w", True),
    ("w_sew", "u1", "w", False),
    ("w_lmul", "u1", "w", False),
    ("v_instr", "i4", "v", True),
    ("v_vl", "i8", "v", True),
    ("v_sew", "u1", "v", False),
    ("v_lmul", "u1", "v", False),
    ("v_slide", "i8", "v", True),
    ("v_flags", "u1", "v", False),
    ("m_base", "i8", "v", True),
    ("m_stride", "i8", "v", True),
    ("m_count", "i8", "v", True),
    ("m_ew", "u1", "v", False),
    ("m_pattern", "u1", "v", False),
)

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _i64(value) -> bool:
    return isinstance(value, int) and _I64_MIN <= value <= _I64_MAX


def _u8(value) -> bool:
    return isinstance(value, int) and 0 <= value <= 255


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _layout(counts: dict) -> tuple[dict, int]:
    """Column table ``{name: (dtype, offset, count)}`` plus total bytes,
    computed from the static schema and the four group counts — the
    same arithmetic on the pack and unpack side, so the header never
    has to spell the table out."""
    table: dict[str, tuple] = {}
    offset = 0
    for name, dtype, group, _ in _COLUMNS:
        dt = np.dtype(dtype)
        offset = _align8(offset)
        count = counts[group]
        table[name] = (dt, offset, count)
        offset += dt.itemsize * count
    return table, offset


def _delta_encode(arr: np.ndarray) -> np.ndarray:
    """First value, then successive differences.  Two's-complement
    wraparound makes :func:`_delta_decode` an exact inverse even at the
    i64 boundaries."""
    out = arr.copy()
    out[1:] -= arr[:-1]
    return out


def _delta_decode(arr: np.ndarray) -> np.ndarray:
    return np.cumsum(arr, dtype=arr.dtype)


# ----------------------------------------------------------------------
# Packing
# ----------------------------------------------------------------------
def pack_trace(trace, program: Program) -> bytes:
    """Flatten ``trace`` into a self-describing columnar blob.

    Every event that fits the column schema is encoded as array rows;
    anything else (foreign event classes, out-of-range fields,
    instructions absent from ``program``) is pickled whole into the
    fallback map.  The result round-trips through
    :func:`unpack_trace` to an event stream with identical contents.
    """
    instr_index = {id(instr): i
                   for i, instr in enumerate(program.instructions)}
    cols: dict[str, list] = {name: [] for name, _, _, _ in _COLUMNS}
    tags = cols["tags"]
    kinds: list[str] = []
    kind_code: dict[str, int] = {}
    fallback: dict[int, object] = {}

    for index, event in enumerate(trace):
        cls = event.__class__
        if cls is ScalarEvent:
            kind, addr, nbytes = event.kind, event.addr, event.nbytes
            if (isinstance(kind, str) and _i64(nbytes)
                    and (addr is None
                         or (isinstance(addr, int)
                             and 0 <= addr <= _I64_MAX))):
                code = kind_code.get(kind)
                if code is None:
                    code = kind_code[kind] = len(kinds)
                    kinds.append(kind)
                    if code > 0xFFFF:
                        raise ValueError("scalar kind vocabulary overflow")
                tags.append(TAG_SCALAR)
                cols["s_kind"].append(code)
                cols["s_addr"].append(-1 if addr is None else addr)
                cols["s_nbytes"].append(nbytes)
                continue
        elif cls is VsetvlEvent:
            if _i64(event.vl) and _u8(event.sew) and _u8(event.lmul):
                tags.append(TAG_VSETVL)
                cols["w_vl"].append(event.vl)
                cols["w_sew"].append(event.sew)
                cols["w_lmul"].append(event.lmul)
                continue
        elif cls is VectorEvent:
            iidx = instr_index.get(id(event.instr))
            mem = event.mem
            flat = (iidx is not None and iidx <= 0x7FFFFFFF
                    and _i64(event.vl) and _u8(event.sew)
                    and _u8(event.lmul) and _i64(event.slide_amount))
            if flat and mem is not None:
                flat = (type(mem) is MemAccess and _i64(mem.base)
                        and _i64(mem.stride) and _i64(mem.count)
                        and _u8(mem.ew_bytes)
                        and mem.pattern in _PATTERN_CODE)
            if flat:
                tags.append(TAG_VECTOR)
                cols["v_instr"].append(iidx)
                cols["v_vl"].append(event.vl)
                cols["v_sew"].append(event.sew)
                cols["v_lmul"].append(event.lmul)
                cols["v_slide"].append(event.slide_amount)
                if mem is None:
                    cols["v_flags"].append(0)
                    cols["m_base"].append(0)
                    cols["m_stride"].append(0)
                    cols["m_count"].append(0)
                    cols["m_ew"].append(0)
                    cols["m_pattern"].append(0)
                else:
                    cols["v_flags"].append(1 | (2 if mem.is_store else 0))
                    cols["m_base"].append(mem.base)
                    cols["m_stride"].append(mem.stride)
                    cols["m_count"].append(mem.count)
                    cols["m_ew"].append(mem.ew_bytes)
                    cols["m_pattern"].append(_PATTERN_CODE[mem.pattern])
                continue
        tags.append(TAG_FALLBACK)
        fallback[index] = event

    # -- assemble the blob --------------------------------------------
    counts = {"t": len(tags), "s": len(cols["s_kind"]),
              "w": len(cols["w_vl"]), "v": len(cols["v_instr"])}
    table, _ = _layout(counts)
    header = {
        "pack": PACK_VERSION,
        "counts": (counts["t"], counts["s"], counts["w"], counts["v"]),
        "scalar_count": trace.scalar_count,
        "vector_count": trace.vector_count,
        "total_flops": trace.total_flops,
        "kinds": tuple(kinds),
        "fallback": (pickle.dumps(fallback,
                                  protocol=pickle.HIGHEST_PROTOCOL)
                     if fallback else b""),
    }
    header_bytes = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    region = _align8(len(MAGIC) + 4 + len(header_bytes))
    parts = [MAGIC, struct.pack("<I", len(header_bytes)), header_bytes,
             b"\x00" * (region - len(MAGIC) - 4 - len(header_bytes))]
    cursor = 0
    for name, dtype, _, delta in _COLUMNS:
        dt, off, _ = table[name]
        arr = np.asarray(cols[name], dtype=dt)
        if delta and len(arr) > 1:
            arr = _delta_encode(arr)
        if off > cursor:
            parts.append(b"\x00" * (off - cursor))
            cursor = off
        parts.append(arr.tobytes())
        cursor += arr.nbytes
    return b"".join(parts)


# ----------------------------------------------------------------------
# Unpacking
# ----------------------------------------------------------------------
def unpack_trace(blob: bytes, program: Program) -> "PackedTrace":
    """Wrap a packed blob as a lazy :class:`PackedTrace`.

    Validates the magic, layout version, and column table; raises
    ``ValueError`` for anything that is not a well-formed v6 blob (the
    disk tier treats that as a corrupt entry and purges it).
    """
    packed = PackedTrace.__new__(PackedTrace)
    _parse_into(packed, blob, program)
    return packed


def _parse_into(packed: "PackedTrace", blob, program: Program) -> None:
    if bytes(blob[:4]) != MAGIC:
        raise ValueError("not a packed-trace blob (bad magic)")
    (header_len,) = struct.unpack_from("<I", blob, 4)
    if 8 + header_len > len(blob):
        raise ValueError("packed-trace header overruns the blob")
    header = pickle.loads(bytes(blob[8:8 + header_len]))
    if not isinstance(header, dict) or header.get("pack") != PACK_VERSION:
        raise ValueError("unsupported packed-trace layout version")
    region = _align8(8 + header_len)
    raw_counts = header.get("counts")
    if (not isinstance(raw_counts, tuple) or len(raw_counts) != 4
            or any((not isinstance(c, int)) or c < 0 for c in raw_counts)):
        raise ValueError("packed-trace header has malformed counts")
    counts = dict(zip("tswv", raw_counts))
    table, total = _layout(counts)
    if region + total > len(blob):
        raise ValueError("packed-trace columns overrun the blob")
    columns: dict[str, np.ndarray] = {}
    for name, _, _, delta in _COLUMNS:
        dt, off, count = table[name]
        arr = np.frombuffer(blob, dtype=dt, count=count,
                            offset=region + off)
        if delta and count > 1:
            arr = _delta_decode(arr)
        columns[name] = arr
    packed.blob = blob
    packed.program = program
    packed.n_events = counts["t"]
    packed.scalar_count = int(header["scalar_count"])
    packed.vector_count = int(header["vector_count"])
    packed.total_flops = header["total_flops"]
    packed.kinds = header["kinds"]
    packed.columns = columns
    packed.fallback_bytes = header["fallback"]
    packed._events = None
    packed._plan = None


class PackedTrace:
    """Lazy columnar view of a packed trace.

    Quacks like :class:`~repro.functional.trace.DynamicTrace` for the
    consumers that matter (aggregate counters, ``len``, iteration,
    ``vector_events``) while keeping the payload as flat numpy column
    views over the blob bytes until someone genuinely needs event
    objects.  ``_plan`` caches the timing engine's compiled replay plan
    exactly like ``DynamicTrace._plan`` does.
    """

    __slots__ = ("blob", "program", "n_events", "scalar_count",
                 "vector_count", "total_flops", "kinds", "columns",
                 "fallback_bytes", "_events", "_plan")

    def __init__(self, blob: bytes, program: Program) -> None:
        _parse_into(self, blob, program)

    # -- pickling: ship the blob, re-derive the views ------------------
    def __getstate__(self):
        return (bytes(self.blob), self.program)

    def __setstate__(self, state):
        blob, program = state
        _parse_into(self, blob, program)

    # -- DynamicTrace-compatible surface -------------------------------
    def __len__(self) -> int:
        return self.n_events

    def __iter__(self) -> Iterator:
        return iter(self.events)

    def vector_events(self) -> Iterator[VectorEvent]:
        return (e for e in self.events if isinstance(e, VectorEvent))

    @property
    def events(self) -> list:
        """Materialized event objects (built on first access, cached)."""
        events = self._events
        if events is None:
            events = self._events = _build_events(self)
        return events

    @property
    def nbytes(self) -> int:
        """Size of the packed blob in bytes."""
        return len(self.blob)

    def to_trace(self) -> DynamicTrace:
        """Rebuild a plain :class:`DynamicTrace` with equal contents."""
        return DynamicTrace(events=list(self.events),
                            scalar_count=self.scalar_count,
                            vector_count=self.vector_count,
                            total_flops=self.total_flops)


def _build_events(packed: PackedTrace) -> list:
    cols = packed.columns
    kinds = packed.kinds
    instructions = packed.program.instructions
    fallback = (pickle.loads(packed.fallback_bytes)
                if packed.fallback_bytes else {})
    tags = cols["tags"].tolist()
    s_kind = cols["s_kind"].tolist()
    s_addr = cols["s_addr"].tolist()
    s_nbytes = cols["s_nbytes"].tolist()
    w_vl = cols["w_vl"].tolist()
    w_sew = cols["w_sew"].tolist()
    w_lmul = cols["w_lmul"].tolist()
    v_instr = cols["v_instr"].tolist()
    v_vl = cols["v_vl"].tolist()
    v_sew = cols["v_sew"].tolist()
    v_lmul = cols["v_lmul"].tolist()
    v_slide = cols["v_slide"].tolist()
    v_flags = cols["v_flags"].tolist()
    m_base = cols["m_base"].tolist()
    m_stride = cols["m_stride"].tolist()
    m_count = cols["m_count"].tolist()
    m_ew = cols["m_ew"].tolist()
    m_pattern = cols["m_pattern"].tolist()

    events: list = []
    append = events.append
    si = wi = vi = 0
    for index, tag in enumerate(tags):
        if tag == TAG_SCALAR:
            addr = s_addr[si]
            append(ScalarEvent(kinds[s_kind[si]],
                               None if addr < 0 else addr, s_nbytes[si]))
            si += 1
        elif tag == TAG_VSETVL:
            append(VsetvlEvent(w_vl[wi], w_sew[wi], w_lmul[wi]))
            wi += 1
        elif tag == TAG_VECTOR:
            flags = v_flags[vi]
            mem = None
            if flags & 1:
                mem = MemAccess(base=m_base[vi], stride=m_stride[vi],
                                count=m_count[vi], ew_bytes=m_ew[vi],
                                pattern=_PATTERNS[m_pattern[vi]],
                                is_store=bool(flags & 2))
            append(VectorEvent(instructions[v_instr[vi]], v_vl[vi],
                               v_sew[vi], v_lmul[vi], mem, v_slide[vi]))
            vi += 1
        else:
            append(fallback[index])
    return events
