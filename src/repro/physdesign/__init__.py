"""Physical-design substrate: hierarchical floorplan + wire estimates.

Replaces the paper's IC Compiler 2 place-and-route step for the purposes
of Fig 8 (the 16-lane floorplan) and the Section IV-D observation that
the 64-lane design loses frequency to routing-congestion hotspots.
"""

from .floorplan import Floorplan, Block, build_floorplan
from .wirelength import hpwl, ring_wirelength, congestion_score

__all__ = [
    "Floorplan",
    "Block",
    "build_floorplan",
    "hpwl",
    "ring_wirelength",
    "congestion_score",
]
