"""Wirelength and congestion estimates over a floorplan.

Half-perimeter wirelength (HPWL) for the broadcast nets, ring perimeter
for the RINGI, and a congestion score for the central strait — the
routing hotspot the paper blames for the 64-lane frequency drop
(Section IV-D: "floorplan inefficiencies that result in routing
congestion hotspots").
"""

from __future__ import annotations

from ..errors import ConfigError
from .floorplan import Block, Floorplan


def hpwl(blocks: list[Block]) -> float:
    """Half-perimeter wirelength of a net connecting block centers (mm)."""
    if not blocks:
        return 0.0
    xs = [b.center[0] for b in blocks]
    ys = [b.center[1] for b in blocks]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def ring_wirelength(fp: Floorplan) -> float:
    """Total RINGI length: neighbour-to-neighbour around the two columns."""
    clusters = fp.clusters()
    if len(clusters) < 2:
        return 0.0
    # Ring order: up one column, across, down the other (the snake of
    # Fig 4 mapped onto the two-column floorplan).
    left = sorted((b for i, b in enumerate(clusters) if i % 2 == 0),
                  key=lambda b: b.y)
    right = sorted((b for i, b in enumerate(clusters) if i % 2 == 1),
                   key=lambda b: b.y, reverse=True)
    order = left + right
    total = 0.0
    for a, b in zip(order, order[1:] + order[:1]):
        total += abs(a.center[0] - b.center[0]) \
            + abs(a.center[1] - b.center[1])
    return total


def reqi_wirelength(fp: Floorplan) -> float:
    """Broadcast net: CVA6/REQI spine to every cluster."""
    try:
        spine = fp.block("reqi_ringi")
    except ConfigError:
        return 0.0  # floorplan has no spine block: nothing to route
    return sum(abs(spine.center[0] - c.center[0])
               + abs(spine.center[1] - c.center[1]) for c in fp.clusters())


def congestion_score(fp: Floorplan, bytes_per_cluster: int = 32) -> float:
    """Routing demand over supply in the central strait.

    Demand: every cluster's GLSU data bus (32L bits, Fig 2) plus the REQI
    broadcast must traverse the strait; supply grows with the strait's
    height (routing tracks).  Values above ~1 mean the router must detour
    into the cluster channels — the congestion hotspot regime.
    """
    clusters = fp.clusters()
    if not clusters:
        return 0.0
    demand = len(clusters) * bytes_per_cluster
    supply = 118.0 * fp.die_h  # tracks per mm of strait height (fitted
    #   so the 64-lane instance lands at the published 1.15 GHz while the
    #   32-lane one still closes at 1.4 GHz)
    return demand / max(supply, 1e-9)
