"""Hierarchical floorplan generator (Fig 8 analogue).

The paper implements AraXL hierarchically: each 4-lane cluster is a
hardened macro, placed in two columns with CVA6 and the top-level
interfaces in the middle channel — visible in the Fig 8 die plot.  This
module reproduces that arrangement from the area model alone: cluster
macros are near-square blocks, stacked in two columns, with a central
strait for CVA6 + GLSU + REQI and the ring snaking along the cluster
perimeter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..params import AraXLConfig, LANES_PER_CLUSTER
from ..ppa.area import araxl_area, kge_to_mm2


@dataclass(frozen=True)
class Block:
    """A placed rectangle (mm)."""

    name: str
    x: float
    y: float
    w: float
    h: float

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.w / 2, self.y + self.h / 2)

    def overlaps(self, other: "Block") -> bool:
        return not (self.x + self.w <= other.x or other.x + other.w <= self.x
                    or self.y + self.h <= other.y
                    or other.y + other.h <= self.y)


@dataclass
class Floorplan:
    """A placed die: dimensions plus the block list."""
    machine: str
    die_w: float
    die_h: float
    blocks: list[Block] = field(default_factory=list)

    @property
    def die_area(self) -> float:
        return self.die_w * self.die_h

    @property
    def block_area(self) -> float:
        return sum(b.area for b in self.blocks)

    @property
    def utilization(self) -> float:
        return self.block_area / self.die_area if self.die_area else 0.0

    def block(self, name: str) -> Block:
        for b in self.blocks:
            if b.name == name:
                return b
        raise ConfigError(f"no block named {name!r}")

    def clusters(self) -> list[Block]:
        return [b for b in self.blocks if b.name.startswith("cluster")]

    def ascii_art(self, cols: int = 64) -> str:
        """Render the floorplan as ASCII (Fig 8 stand-in)."""
        rows = max(8, int(cols * self.die_h / max(self.die_w, 1e-9) * 0.5))
        canvas = [[" "] * cols for _ in range(rows)]
        for idx, b in enumerate(self.blocks):
            x0 = int(b.x / self.die_w * (cols - 1))
            x1 = max(x0 + 1, int((b.x + b.w) / self.die_w * (cols - 1)))
            y0 = int(b.y / self.die_h * (rows - 1))
            y1 = max(y0 + 1, int((b.y + b.h) / self.die_h * (rows - 1)))
            mark = b.name[0].upper() if not b.name.startswith("cluster") \
                else str(idx % 10)
            for y in range(y0, min(y1 + 1, rows)):
                for x in range(x0, min(x1 + 1, cols)):
                    canvas[y][x] = mark
        legend = ", ".join(sorted({f"{b.name[0].upper()}={b.name.split('_')[0]}"
                                   for b in self.blocks
                                   if not b.name.startswith("cluster")}))
        body = "\n".join("".join(row) for row in canvas)
        return (f"{self.machine} floorplan "
                f"({self.die_w:.2f} x {self.die_h:.2f} mm)\n{body}\n"
                f"digits = clusters; {legend}")


#: Macro placement utilization (block area / die area), typical for
#: hierarchical hardened-macro flows.
TARGET_UTILIZATION = 0.78


def build_floorplan(config: AraXLConfig) -> Floorplan:
    """Two cluster columns around a central interface strait (Fig 8)."""
    if getattr(config, "family", None) != "araxl":
        raise ConfigError(
            f"floorplans are defined for AraXL-family machines only; "
            f"{config.name!r} is family {getattr(config, 'family', None)!r}"
            f" (Ara2 is a flat macro, not a cluster hierarchy)")
    area = araxl_area(config.lanes)
    clusters = config.clusters
    cluster_kge = (area.component("lanes") + area.component("masku")
                   + area.component("sldu") + area.component("vlsu")
                   + area.component("seq_disp")) / clusters
    cluster_mm2 = kge_to_mm2(cluster_kge)
    middle_kge = (area.component("cva6") + area.component("glsu")
                  + area.component("reqi") + area.component("ringi"))
    middle_mm2 = kge_to_mm2(middle_kge)

    die_area = kge_to_mm2(area.total_kge) / TARGET_UTILIZATION
    # Near-square die: two cluster columns beside a central strait.  At
    # high cluster counts the macros stretch horizontally to keep the die
    # square — the "floorplan inefficiency" of Section IV-D.
    die_side = math.sqrt(die_area)
    rows = max(1, math.ceil(clusters / 2))
    cluster_h = die_side / rows
    cluster_w = cluster_mm2 / cluster_h
    col_h = rows * cluster_h
    strait_w = max(middle_mm2 / max(col_h, 1e-9), 0.08 * cluster_w)
    die_w = 2 * cluster_w + strait_w
    die_h = col_h

    fp = Floorplan(machine=config.name, die_w=die_w, die_h=die_h)
    for c in range(clusters):
        col = c % 2
        row = c // 2
        x = 0.0 if col == 0 else cluster_w + strait_w
        fp.blocks.append(Block(name=f"cluster{c}", x=x, y=row * cluster_h,
                               w=cluster_w, h=cluster_h))
    # Middle strait: CVA6 at the bottom, GLSU trunk above, REQI spine top.
    cva6_h = kge_to_mm2(area.component("cva6")) / strait_w
    glsu_h = kge_to_mm2(area.component("glsu")) / strait_w
    reqi_h = max(kge_to_mm2(area.component("reqi") + area.component("ringi"))
                 / strait_w, 0.02)
    fp.blocks.append(Block("cva6", cluster_w, 0.0, strait_w, cva6_h))
    fp.blocks.append(Block("glsu", cluster_w, cva6_h, strait_w, glsu_h))
    fp.blocks.append(Block("reqi_ringi", cluster_w, cva6_h + glsu_h,
                           strait_w, reqi_h))
    if config.lanes // LANES_PER_CLUSTER != clusters:  # pragma: no cover
        raise ConfigError("inconsistent cluster count")
    return fp
