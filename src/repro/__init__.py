"""repro — a functional + cycle-level reproduction of AraXL (DATE 2025).

AraXL is a physically scalable, ultra-wide RISC-V vector processor: up to
64 lanes and the RVV 1.0 maximum VLEN of 64 Kibit per register, built
from 4-lane Ara2 clusters joined by three scalable interfaces (REQI,
GLSU, RINGI).  This package reproduces the paper's system and its entire
evaluation in Python:

* :mod:`repro.isa` / :mod:`repro.functional` — an element-exact RVV 1.0
  subset simulator with an assembler DSL;
* :mod:`repro.timing` / :mod:`repro.uarch` — a transaction-level cycle
  model of both AraXL and the lumped Ara2 baseline;
* :mod:`repro.kernels` — the six Table I benchmarks as vector programs;
* :mod:`repro.ppa` / :mod:`repro.physdesign` — calibrated area/frequency/
  power models and a floorplan substrate replacing the 22-nm flow;
* :mod:`repro.eval` — one driver per paper table and figure.

Quickstart::

    from repro import AraXLConfig, Simulator
    from repro.kernels import build_fmatmul

    config = AraXLConfig(lanes=64)
    kernel = build_fmatmul(config, bytes_per_lane=512)
    result = kernel.run(config)          # functional + timing, checked
    print(result.cycles, result.flops_per_cycle)
"""

from .errors import (AssemblerError, ConfigError, ExecutionError,
                     IllegalInstructionError, IsaError, MemoryAccessError,
                     ReproError, TimingError)
from .params import (Ara2Config, AraXLConfig, MemoryConfig, ScalarCoreConfig,
                     SystemConfig, paper_configurations)
from .isa import Assembler, Program
from .sim import RunResult, Simulator, run_program

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigError",
    "IsaError",
    "AssemblerError",
    "ExecutionError",
    "IllegalInstructionError",
    "MemoryAccessError",
    "TimingError",
    "SystemConfig",
    "Ara2Config",
    "AraXLConfig",
    "MemoryConfig",
    "ScalarCoreConfig",
    "paper_configurations",
    "Assembler",
    "Program",
    "Simulator",
    "RunResult",
    "run_program",
]
