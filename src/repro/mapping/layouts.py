"""VRF byte layouts, including AraXL's dedicated mask encoding.

Section III-B-5: Ara2's MASKU distributes single mask *bits* all-to-all
across lanes, which cannot scale to 64 lanes.  AraXL instead adds a new
VRF byte encoding that keeps each element's mask bit in the lane that owns
the element, at the cost of an explicit *reshuffle* (run by the SLDU over
the RINGI) whenever software reuses a register between mask and non-mask
layouts.  This module models the layouts and the reshuffle cost so the
"don't reuse mask registers for data" guidance of the paper is measurable.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigError


class ByteLayout(enum.Enum):
    """Byte encodings a vector register can be in."""

    #: Standard element layout for a given EW (8/16/32/64): the byte
    #: encoding Ara2 uses for all data.
    EW8 = "ew8"
    EW16 = "ew16"
    EW32 = "ew32"
    EW64 = "ew64"
    #: AraXL's mask layout: bit i stored with lane owning element i.
    MASK = "mask"

    @classmethod
    def for_sew(cls, sew: int) -> "ByteLayout":
        try:
            return {8: cls.EW8, 16: cls.EW16, 32: cls.EW32, 64: cls.EW64}[sew]
        except KeyError:
            raise ConfigError(f"no element layout for SEW {sew}") from None


@dataclass(frozen=True)
class ReshuffleEstimate:
    """Cost of converting a register between byte layouts."""

    words_moved: int  # 64-bit words crossing the ring
    cycles: float


def reshuffle_cost_words(vlen_bits: int, clusters: int,
                         src: ByteLayout, dst: ByteLayout) -> int:
    """64-bit words that must cross clusters for a layout conversion.

    Same layout: zero.  Element-to-element conversions move a fraction
    (C-1)/C of the register (each byte's new home is uniformly random
    across clusters to first order).  Mask conversions concentrate bits,
    so effectively the whole register's worth of control traffic moves.
    """
    if src == dst:
        return 0
    words = vlen_bits // 64
    if ByteLayout.MASK in (src, dst):
        return words
    return math.ceil(words * (clusters - 1) / max(1, clusters))


def reshuffle_cycles(vlen_bits: int, clusters: int, src: ByteLayout,
                     dst: ByteLayout, hop_cycles: int = 2) -> ReshuffleEstimate:
    """Cycle estimate: words ride the ring at 1 word/cycle/direction.

    Two directions halve the serialization; average hop distance is C/4.
    Reshuffling is deliberately slow (the paper tells software to avoid
    it), so a coarse model is sufficient.
    """
    words = reshuffle_cost_words(vlen_bits, clusters, src, dst)
    if words == 0 or clusters <= 1:
        return ReshuffleEstimate(words_moved=words, cycles=float(words and 2))
    avg_hops = max(1.0, clusters / 4.0)
    cycles = words / 2.0 * avg_hops / max(1, clusters) * hop_cycles \
        + avg_hops * hop_cycles
    return ReshuffleEstimate(words_moved=words, cycles=cycles)
