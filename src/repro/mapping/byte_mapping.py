"""Element-to-lane/cluster mapping laws (Section III-B-2, Fig 2).

Ara2 maps element *i* to lane ``i mod L`` regardless of element width, so
mixed-width operations never reshuffle bytes between lanes.  AraXL extends
the law hierarchically:

    element i  ->  cluster (i // L) mod C,  lane i mod L

i.e. L-element blocks round-robin across clusters.  These functions are
the ground truth the GLSU's Shuffle stage implements; the tests assert
bijectivity, the mixed-width invariance, and the consistency of the
two-stage (GLSU then local VLSU) mapping with the direct law.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class Ara2Mapping:
    """The flat Ara2 law: element i -> lane i mod L."""

    lanes: int

    def lane_of(self, element: int) -> int:
        return element % self.lanes

    def slot_of(self, element: int) -> int:
        """Position of the element within its lane's VRF chunk."""
        return element // self.lanes


@dataclass(frozen=True)
class AraXLMapping:
    """The hierarchical AraXL law (clusters of L lanes)."""

    clusters: int
    lanes_per_cluster: int

    def __post_init__(self) -> None:
        if self.clusters < 1 or self.lanes_per_cluster < 1:
            raise ConfigError("mapping needs at least one cluster and lane")

    @property
    def total_lanes(self) -> int:
        return self.clusters * self.lanes_per_cluster

    def cluster_of(self, element: int) -> int:
        return (element // self.lanes_per_cluster) % self.clusters

    def lane_of(self, element: int) -> int:
        """Lane within the owning cluster."""
        return element % self.lanes_per_cluster

    def slot_of(self, element: int) -> int:
        """Block index within the (cluster, lane) pair."""
        return element // (self.lanes_per_cluster * self.clusters)

    def home(self, element: int) -> tuple[int, int, int]:
        """(cluster, lane, slot) of an element."""
        return (self.cluster_of(element), self.lane_of(element),
                self.slot_of(element))

    def flat_lane(self, element: int) -> int:
        """Global lane index, counting lanes cluster by cluster."""
        return self.cluster_of(element) * self.lanes_per_cluster \
            + self.lane_of(element)

    # ------------------------------------------------------------------
    def elements_per_cluster(self, vl: int) -> np.ndarray:
        """How many of the first ``vl`` elements each cluster owns."""
        counts = np.zeros(self.clusters, dtype=np.int64)
        full_blocks, rem = divmod(vl, self.lanes_per_cluster)
        base = full_blocks // self.clusters
        counts[:] = base * self.lanes_per_cluster
        for block in range(full_blocks % self.clusters):
            counts[block] += self.lanes_per_cluster
        if rem:
            counts[full_blocks % self.clusters] += rem
        return counts

    def ring_crossings_slide1(self, vl: int) -> int:
        """Elements a slide-by-1 moves between adjacent clusters.

        One element crosses per lane-block boundary (every L elements),
        which is what sizes the ring's 64 bit/cycle/direction budget.
        """
        if self.clusters <= 1:
            return 0
        return max(0, (vl - 1)) // self.lanes_per_cluster


def element_home(element: int, clusters: int, lanes_per_cluster: int
                 ) -> tuple[int, int, int]:
    """Convenience wrapper over :class:`AraXLMapping`."""
    return AraXLMapping(clusters, lanes_per_cluster).home(element)


def shuffle_pattern(vl: int, clusters: int, lanes_per_cluster: int
                    ) -> np.ndarray:
    """Destination cluster of each of the first ``vl`` memory elements.

    This is the control pattern of the GLSU Shuffle stage for one
    unit-stride request.
    """
    mapping = AraXLMapping(clusters, lanes_per_cluster)
    idx = np.arange(vl, dtype=np.int64)
    return (idx // mapping.lanes_per_cluster) % mapping.clusters
