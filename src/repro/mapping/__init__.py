"""Memory-to-VRF byte mapping and register byte layouts (Section III-B-2/5)."""

from .byte_mapping import (AraXLMapping, Ara2Mapping, element_home,
                           shuffle_pattern)
from .layouts import ByteLayout, reshuffle_cost_words

__all__ = [
    "AraXLMapping",
    "Ara2Mapping",
    "element_home",
    "shuffle_pattern",
    "ByteLayout",
    "reshuffle_cost_words",
]
